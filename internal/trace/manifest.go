package trace

import (
	"encoding/json"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"
)

// Manifest is the machine-readable record written alongside every
// instrumentation output, so a trace or metrics file is reproducible
// and self-describing: what ran, with which configuration and seed, on
// which code revision, and how long it took. The gem5 standardization
// argument: results without run metadata cannot be compared or
// reproduced.
type Manifest struct {
	Tool        string    `json:"tool"`           // producing command, e.g. "seecsim"
	Args        []string  `json:"args"`           // full command line
	Config      any       `json:"config"`         // the run's Config struct
	Seed        uint64    `json:"seed"`           // PRNG seed actually used
	GitDescribe string    `json:"git_describe"`   // `git describe --always --dirty`, "" outside a repo
	GoVersion   string    `json:"go_version"`     // runtime.Version()
	GOMAXPROCS  int       `json:"gomaxprocs"`     // worker ceiling during the run
	Started     time.Time `json:"started"`        // wall-clock start
	WallSeconds float64   `json:"wall_seconds"`   // run duration
	Output      string    `json:"output"`         // the file this manifest describes
	Note        string    `json:"note,omitempty"` // free-form context (e.g. figure id)

	// Fault-injection provenance: the canonical fault spec and the
	// derived seed of the injector's private RNG stream. Empty/zero when
	// the run had no fault layer.
	FaultSpec string `json:"fault_spec,omitempty"`
	FaultSeed uint64 `json:"fault_seed,omitempty"`

	// Shards is the intra-run shard count the simulation executed with
	// (sharded runs are byte-identical to serial ones, so this is
	// provenance, not a result parameter). Omitted for serial runs.
	Shards int `json:"shards,omitempty"`

	// Confidence-interval provenance, present when the run used CI
	// early stopping: the requested relative-half-width target, the
	// relative half-width actually achieved at the stop point, and the
	// number of latency batches behind the estimate. A reader can tell
	// at a glance how precise the run's latency figures are.
	StopCI         float64 `json:"stop_ci,omitempty"`
	CIRelHalfWidth float64 `json:"ci_rel_half_width,omitempty"`
	CIBatches      int     `json:"ci_batches,omitempty"`

	// Telemetry records the live-observability endpoints the run served,
	// when sweep telemetry was enabled: where /status was listening and
	// where the JSONL event log went. Provenance only — telemetry never
	// influences results.
	Telemetry *TelemetrySection `json:"telemetry,omitempty"`

	// Plan records sweep-planner provenance, present when the producing
	// sweep ran through internal/plan: how many jobs were submitted, how
	// many were served from the content-addressed cache or collapsed as
	// in-batch duplicates, how many were actually simulated, and what
	// warmup-prefix sharing did. Reuse is byte-identity-preserving, so
	// this is provenance, not a result parameter.
	Plan *PlanSection `json:"plan,omitempty"`
}

// PlanSection is the sweep-planner provenance block of a Manifest.
type PlanSection struct {
	Jobs              int64 `json:"jobs"`
	Deduped           int64 `json:"deduped"`
	MemHits           int64 `json:"mem_hits"`
	StoreHits         int64 `json:"store_hits"`
	Simulated         int64 `json:"simulated"`
	WarmupFamilies    int64 `json:"warmup_families,omitempty"`
	WarmupForks       int64 `json:"warmup_forks,omitempty"`
	WarmupCyclesSaved int64 `json:"warmup_cycles_saved,omitempty"`
	WarmupFallbacks   int64 `json:"warmup_fallbacks,omitempty"`
	Quarantined       int64 `json:"quarantined,omitempty"`
}

// TelemetrySection is the manifest's record of live sweep telemetry.
type TelemetrySection struct {
	StatusAddr string `json:"status_addr,omitempty"` // bound /status HTTP address
	EventsPath string `json:"events_path,omitempty"` // JSONL event log path
}

// NewManifest seeds a manifest with the ambient environment (git
// revision, go version, GOMAXPROCS, start time). The caller fills in
// tool/config/seed and calls Write when the run finishes.
func NewManifest(tool string, args []string) Manifest {
	return Manifest{
		Tool:        tool,
		Args:        args,
		GitDescribe: GitDescribe(),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Started:     time.Now(),
	}
}

// Write finalizes the wall time and writes the manifest as indented
// JSON to path+".manifest.json", recording path as the described
// output.
func (m Manifest) Write(path string) error {
	m.Output = path
	if m.WallSeconds == 0 {
		m.WallSeconds = time.Since(m.Started).Seconds()
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path+".manifest.json", append(data, '\n'), 0o644)
}

// GitDescribe returns `git describe --always --dirty` for the current
// working tree, or "" when git or the repository is unavailable — the
// manifest is still useful without it.
func GitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
