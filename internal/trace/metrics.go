package trace

import (
	"bufio"
	"fmt"
	"io"
)

// StallCause classifies why a flit that wanted to move this cycle did
// not. VA: a head packet could not get a downstream VC; Credit: an
// allocated packet's downstream VC is out of buffer slots; Link: the
// output link was taken (by another winner or a Free-Flow lookahead).
type StallCause uint8

const (
	StallVA StallCause = iota
	StallCredit
	StallLink
	numCauses
)

// Metrics accumulates per-router and per-link time series over fixed
// windows of cycles: stall cycles by cause, input-VC occupancy, and
// flits carried per directed link. Rendered as long-format CSV, each
// window x router (or window x link) is one row — the shape heatmap
// tooling ingests directly. All methods are O(1) and allocation-free
// except at window boundaries.
type Metrics struct {
	rows, cols int
	window     int64
	links      int // directed cardinal links per router (4; index by dir-1)

	cur        []routerAcc
	curStart   int64
	curCycles  int64
	flushed    []routerRow
	totalFlits int64
}

// routerAcc accumulates one router's counters within the open window.
type routerAcc struct {
	stalls [numCauses]int64
	occSum int64    // sum over cycles of occupied input VCs
	out    [4]int64 // flits sent per cardinal output (index dir-1)
}

// routerRow is one flushed (window, router) sample.
type routerRow struct {
	start  int64
	cycles int64
	router int
	acc    routerAcc
}

// NewMetrics returns a metrics collector for a rows x cols mesh with
// the given window length in cycles (<=0 selects 1000).
func NewMetrics(rows, cols int, window int64) *Metrics {
	if window <= 0 {
		window = 1000
	}
	return &Metrics{rows: rows, cols: cols, window: window,
		cur: make([]routerAcc, rows*cols)}
}

// Window returns the configured window length in cycles.
func (m *Metrics) Window() int64 { return m.window }

// Stall records one stall cycle at a router, by cause.
func (m *Metrics) Stall(router int, cause StallCause) {
	m.cur[router].stalls[cause]++
}

// LinkFlit records one flit leaving router on cardinal output dir
// (1..4, the noc port indices North..West).
func (m *Metrics) LinkFlit(router, dir int) {
	m.cur[router].out[dir-1]++
	m.totalFlits++
}

// Occupancy records a router's occupied-input-VC count for one cycle.
func (m *Metrics) Occupancy(router, occ int) {
	m.cur[router].occSum += int64(occ)
}

// Tick closes out the current cycle and flushes the window at
// boundaries. Call exactly once per simulated cycle while enabled.
func (m *Metrics) Tick() {
	m.curCycles++
	if m.curCycles >= m.window {
		m.flush()
	}
}

// Flush force-closes the current partial window (end of run).
func (m *Metrics) Flush() {
	if m.curCycles > 0 {
		m.flush()
	}
}

func (m *Metrics) flush() {
	for r := range m.cur {
		m.flushed = append(m.flushed, routerRow{
			start: m.curStart, cycles: m.curCycles, router: r, acc: m.cur[r]})
		m.cur[r] = routerAcc{}
	}
	m.curStart += m.curCycles
	m.curCycles = 0
}

// WriteRouterCSV renders the per-router time series. Columns:
//
//	window_start,cycles,router,x,y,stall_va,stall_credit,stall_link,avg_vc_occupancy,flits_out
//
// Pivot on (x, y) with window_start as the animation axis for a mesh
// heatmap of any column.
func (m *Metrics) WriteRouterCSV(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	fmt.Fprintln(bw, "window_start,cycles,router,x,y,stall_va,stall_credit,stall_link,avg_vc_occupancy,flits_out")
	for _, row := range m.flushed {
		a := row.acc
		occ := 0.0
		if row.cycles > 0 {
			occ = float64(a.occSum) / float64(row.cycles)
		}
		total := a.out[0] + a.out[1] + a.out[2] + a.out[3]
		fmt.Fprintf(bw, "%d,%d,%d,%d,%d,%d,%d,%d,%.3f,%d\n",
			row.start, row.cycles, row.router, row.router%m.cols, row.router/m.cols,
			a.stalls[StallVA], a.stalls[StallCredit], a.stalls[StallLink], occ, total)
	}
	return bw.Flush()
}

// WriteLinkCSV renders the per-directed-link time series. Columns:
//
//	window_start,cycles,from,to,dir,flits,utilization
//
// where utilization is flits/cycles (a one-cycle link carries at most
// one flit per cycle, so this is already normalized).
func (m *Metrics) WriteLinkCSV(w io.Writer, neighbor func(router, dir int) int, dirName func(dir int) string) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	fmt.Fprintln(bw, "window_start,cycles,from,to,dir,flits,utilization")
	for _, row := range m.flushed {
		for d := 0; d < 4; d++ {
			dir := d + 1
			to := neighbor(row.router, dir)
			if to < 0 {
				continue // mesh edge: no link in this direction
			}
			util := 0.0
			if row.cycles > 0 {
				util = float64(row.acc.out[d]) / float64(row.cycles)
			}
			fmt.Fprintf(bw, "%d,%d,%d,%d,%s,%d,%.4f\n",
				row.start, row.cycles, row.router, to, dirName(dir), row.acc.out[d], util)
		}
	}
	return bw.Flush()
}
