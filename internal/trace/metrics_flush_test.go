package trace

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// TestMetricsFinalWindowFlush pins Flush's end-of-run contract: a
// partial window is closed with its true cycle count (so per-cycle
// normalization uses the short window's length, not the configured
// one), a second Flush is a no-op, and a run ending exactly on a window
// boundary flushes nothing extra.
func TestMetricsFinalWindowFlush(t *testing.T) {
	m := NewMetrics(2, 2, 10)
	// 25 cycles: two full windows flush at ticks 10 and 20, leaving a
	// 5-cycle partial window holding the tail samples.
	for c := 0; c < 25; c++ {
		m.Occupancy(0, 2)
		if c >= 20 {
			m.LinkFlit(0, 1) // 5 flits in the partial window
		}
		m.Tick()
	}
	m.Flush()
	if got := len(m.flushed); got != 3*4 {
		t.Fatalf("flushed rows = %d, want 12 (3 windows x 4 routers)", got)
	}
	last := m.flushed[len(m.flushed)-4] // router 0 of the final window
	if last.start != 20 || last.cycles != 5 || last.router != 0 {
		t.Fatalf("final window row = %+v, want start=20 cycles=5 router=0", last)
	}
	if last.acc.out[0] != 5 {
		t.Fatalf("final window flits = %d, want 5", last.acc.out[0])
	}

	// Flush must be idempotent: the instrument finisher calls it once,
	// but a second call (e.g. a future double-finish bug) must not mint
	// phantom zero-cycle windows.
	m.Flush()
	if got := len(m.flushed); got != 12 {
		t.Fatalf("second Flush added rows: %d, want 12", got)
	}

	// Partial-window normalization: occupancy and utilization divide by
	// the 5 real cycles, not the 10-cycle window length.
	var buf bytes.Buffer
	if err := m.WriteRouterCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	finalRouter0 := lines[len(lines)-4]
	if !strings.HasPrefix(finalRouter0, "20,5,0,") || !strings.Contains(finalRouter0, ",2.000,") {
		t.Fatalf("final window router CSV = %q, want start 20, 5 cycles, occupancy 2.000", finalRouter0)
	}
	buf.Reset()
	neighbor := func(r, dir int) int {
		if r == 0 && dir == 1 {
			return 2
		}
		return -1
	}
	if err := m.WriteLinkCSV(&buf, neighbor, func(int) string { return "N" }); err != nil {
		t.Fatal(err)
	}
	lines = strings.Split(strings.TrimSpace(buf.String()), "\n")
	finalLink := lines[len(lines)-1]
	if !strings.HasPrefix(finalLink, "20,5,0,2,N,5,1.0000") {
		t.Fatalf("final window link CSV = %q, want 5 flits / 5 cycles = 1.0000", finalLink)
	}

	// A run ending exactly on a boundary has no partial window to close.
	m2 := NewMetrics(1, 1, 10)
	for c := 0; c < 20; c++ {
		m2.Tick()
	}
	before := len(m2.flushed)
	m2.Flush()
	if got := len(m2.flushed); got != before {
		t.Fatalf("boundary-aligned Flush added rows: %d -> %d", before, got)
	}
}

// TestManifestTelemetryRoundTrip: the telemetry section must survive
// the JSON round trip when set and stay absent when not.
func TestManifestTelemetryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := NewManifest("figures", []string{"-fig", "table1", "-status", ":0"})
	m.Seed = 7
	m.Telemetry = &TelemetrySection{StatusAddr: "127.0.0.1:8080", EventsPath: "events.jsonl"}
	out := dir + "/metrics.csv"
	if err := m.Write(out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out + ".manifest.json")
	if err != nil {
		t.Fatal(err)
	}
	var got Manifest
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("manifest not valid JSON: %v", err)
	}
	if got.Telemetry == nil || got.Telemetry.StatusAddr != "127.0.0.1:8080" ||
		got.Telemetry.EventsPath != "events.jsonl" {
		t.Fatalf("telemetry section did not round-trip: %+v", got.Telemetry)
	}

	// Without telemetry the key must be omitted entirely.
	m2 := NewManifest("seecsim", nil)
	out2 := dir + "/plain.json"
	if err := m2.Write(out2); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(out2 + ".manifest.json")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte("telemetry")) {
		t.Fatalf("disabled telemetry leaked into manifest:\n%s", data)
	}
}
