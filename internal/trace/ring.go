package trace

// Recorder is the default Tracer: a fixed-capacity ring buffer that
// keeps the most recent events. Record is allocation-free and O(1); a
// full ring silently overwrites the oldest events (Dropped counts how
// many were lost), which is exactly the right behavior for "the run
// wedged — what were the last N things that happened?" debugging.
type Recorder struct {
	buf   []Event
	total uint64 // events ever recorded
}

// DefaultCapacity is the recorder size used when a caller passes a
// non-positive capacity: 1<<20 events (~48 MB) keeps several hundred
// thousand cycles of a quiet mesh or a few thousand cycles near
// saturation.
const DefaultCapacity = 1 << 20

// NewRecorder returns a recorder retaining the last capacity events.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{buf: make([]Event, capacity)}
}

// Record implements Tracer.
func (r *Recorder) Record(ev Event) {
	r.buf[r.total%uint64(len(r.buf))] = ev
	r.total++
}

// Len returns the number of events currently retained.
func (r *Recorder) Len() int {
	if r.total < uint64(len(r.buf)) {
		return int(r.total)
	}
	return len(r.buf)
}

// Total returns the number of events ever recorded.
func (r *Recorder) Total() uint64 { return r.total }

// Dropped returns how many events were overwritten by ring wrap.
func (r *Recorder) Dropped() uint64 {
	if r.total < uint64(len(r.buf)) {
		return 0
	}
	return r.total - uint64(len(r.buf))
}

// Reset clears the recorder for reuse across runs without reallocating.
func (r *Recorder) Reset() { r.total = 0 }

// Do calls f for every retained event in chronological (recording)
// order without copying the ring.
func (r *Recorder) Do(f func(Event)) {
	n := uint64(len(r.buf))
	start := uint64(0)
	if r.total > n {
		start = r.total - n
	}
	for i := start; i < r.total; i++ {
		f(r.buf[i%n])
	}
}

// Events returns the retained events in chronological order as a fresh
// slice (test/sink convenience; Do avoids the copy).
func (r *Recorder) Events() []Event {
	out := make([]Event, 0, r.Len())
	r.Do(func(ev Event) { out = append(out, ev) })
	return out
}
