package trace

import (
	"bufio"
	"fmt"
	"io"
)

// WriteJSONL renders the recording as one JSON object per line, in
// chronological order — the grep/jq-friendly format. Schema per line:
//
//	{"cycle":123,"kind":"sa","node":12,"port":1,"vc":3,"pkt":88,"arg":2}
//
// Fields that do not apply to the event kind are omitted (port/vc when
// negative, pkt when zero).
func WriteJSONL(w io.Writer, r *Recorder) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var err error
	r.Do(func(ev Event) {
		if err != nil {
			return
		}
		_, err = fmt.Fprintf(bw, `{"cycle":%d,"kind":%q,"node":%d`, ev.Cycle, ev.Kind.String(), ev.Node)
		if err != nil {
			return
		}
		if ev.Port >= 0 {
			fmt.Fprintf(bw, `,"port":%d`, ev.Port)
		}
		if ev.VC >= 0 {
			fmt.Fprintf(bw, `,"vc":%d`, ev.VC)
		}
		if ev.Pkt != 0 {
			fmt.Fprintf(bw, `,"pkt":%d`, ev.Pkt)
		}
		_, err = fmt.Fprintf(bw, ",\"arg\":%d}\n", ev.Arg)
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// WriteChromeTrace renders the recording in the Chrome trace_event JSON
// object format, loadable by chrome://tracing and Perfetto's legacy
// JSON importer. The mapping:
//
//   - every event becomes a thread-scoped instant ("ph":"i") with
//     pid 0 ("mesh"), tid = router/NIC id, and ts = cycle (the viewer's
//     microsecond unit stands in for a cycle);
//   - each packet's network lifetime (first inject -> eject) becomes an
//     async span ("ph":"b"/"e", id = packet id) under pid 1
//     ("packets"), so per-packet latency is visible as a bar;
//   - process/thread metadata events name the rows.
//
// One simulation cycle maps to one microsecond of viewer time.
func WriteChromeTrace(w io.Writer, r *Recorder) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := fmt.Fprint(bw, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}
	emit(`{"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"mesh"}}`)
	emit(`{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"packets"}}`)
	seen := map[int32]bool{}
	r.Do(func(ev Event) {
		if !seen[ev.Node] {
			seen[ev.Node] = true
			emit(`{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":"node %d"}}`,
				ev.Node, ev.Node)
		}
		emit(`{"name":%q,"ph":"i","s":"t","pid":0,"tid":%d,"ts":%d,"args":{"pkt":%d,"port":%d,"vc":%d,"arg":%d}}`,
			ev.Kind.String(), ev.Node, ev.Cycle, ev.Pkt, ev.Port, ev.VC, ev.Arg)
		switch ev.Kind {
		case EvInject:
			emit(`{"name":"pkt#%d","cat":"packet","ph":"b","id":%d,"pid":1,"tid":0,"ts":%d,"args":{"src":%d,"dst":%d}}`,
				ev.Pkt, ev.Pkt, ev.Cycle, ev.Node, ev.Arg)
		case EvEject:
			emit(`{"name":"pkt#%d","cat":"packet","ph":"e","id":%d,"pid":1,"tid":0,"ts":%d,"args":{"latency":%d}}`,
				ev.Pkt, ev.Pkt, ev.Cycle, ev.Arg)
		}
	})
	if _, err := fmt.Fprintf(bw, "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":\"%d\"}}\n",
		r.Dropped()); err != nil {
		return err
	}
	return bw.Flush()
}
