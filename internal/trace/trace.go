// Package trace is the simulator's instrumentation layer: a flit-level
// event taxonomy, an allocation-free ring-buffered recorder behind a
// nil-checked Tracer interface, sinks that render a recording as JSONL
// or Chrome trace_event JSON (openable in Perfetto / chrome://tracing),
// windowed per-router and per-link metrics exported as CSV heatmaps,
// and a machine-readable run manifest.
//
// The layer is designed to be zero-overhead when disabled: every emit
// site in the simulator guards on a nil Tracer/Metrics pointer, event
// structs are passed by value (no allocation), and the recorder
// overwrites its ring in place. Enabling it never changes simulation
// behavior — instrumentation only observes, so golden outputs stay
// byte-identical with tracing on or off.
package trace

import "fmt"

// Kind identifies one event type in the taxonomy. The flit lifecycle is
// inject -> (route/VA -> SA -> link)* -> eject; VC alloc/release bracket
// a packet's ownership of an input VC; stall kinds record why a
// sendable flit did not move; seeker/FF kinds cover the SEEC express
// channel; EvScheme covers the reactive baselines' recovery actions.
type Kind uint8

const (
	// EvInject: a head flit left its NIC into the router's local input
	// port (Pkt = packet, Node = source, Arg = destination node).
	EvInject Kind = iota
	// EvRoute: the routing function committed to an output port for a
	// head packet (Port = chosen output port).
	EvRoute
	// EvVA: VC allocation granted a downstream VC (VC = downstream VC
	// index at the chosen output port, Arg = output port).
	EvVA
	// EvSA: switch allocation won — one flit crossed the crossbar onto
	// its output link (Port = output port, VC = downstream VC, Arg =
	// flit sequence number).
	EvSA
	// EvLink: a flit was delivered across a link into an input VC
	// (Node = receiving router, Port = input port, VC = input VC).
	EvLink
	// EvEject: a tail flit arrived at the destination NIC — the packet
	// is fully received (Node = destination, Arg = end-to-end latency).
	EvEject
	// EvVCAlloc: an input VC was activated by a head-flit arrival
	// (Port = input port, VC = input VC).
	EvVCAlloc
	// EvVCRelease: an input VC returned to idle on tail departure.
	EvVCRelease
	// EvCreditStall: a sendable flit was held back because the
	// downstream VC is out of credits (Port = desired output port,
	// VC = granted downstream VC).
	EvCreditStall
	// EvLinkStall: a sendable flit was held back because the output
	// link is busy or reserved by a Free-Flow lookahead.
	EvLinkStall
	// EvSeekerLaunch: a SEEC seeker token started circulating (Node =
	// initiating NIC, Arg = message class).
	EvSeekerLaunch
	// EvSeekerMatch: a seeker found a packet to upgrade (Node = router
	// where the match was found, Pkt = matched packet).
	EvSeekerMatch
	// EvSeekerReturn: a seeker finished its circulation empty-handed
	// (Node = initiating NIC, Arg = message class).
	EvSeekerReturn
	// EvFFUpgrade: a packet was frozen out of the regular pipeline and
	// handed to the Free-Flow engine (Node = router or NIC holding it,
	// Arg = packet age in cycles at upgrade).
	EvFFUpgrade
	// EvScheme: a recovery action by a reactive/subactive scheme — a
	// SPIN ring rotation, a SWAP exchange, a DRAIN rotation (Node =
	// router, Arg = scheme-specific magnitude, e.g. ring length).
	EvScheme
	// EvWatchdog: the stall watchdog fired and dumped a snapshot
	// (Arg = cycles since the last ejection).
	EvWatchdog
	// EvFaultFlit: the fault injector damaged a flit crossing a link
	// (Node = receiving router, Pkt = packet, Arg = fault.FlitFault
	// code: 1 glitch, 2 corrupt, 3 drop).
	EvFaultFlit
	// EvFaultDead: a link died permanently (Node = upstream router,
	// Arg = downstream router), or a flit traversed an already-dead
	// link (Pkt != 0).
	EvFaultDead
	// EvPktDiscard: the destination NIC discarded a fully arrived
	// packet (Node = destination, Pkt = packet, Arg = fault.Outcome
	// code: 1 lost, 2 corrupt, 3 duplicate).
	EvPktDiscard
	// EvRetransmit: a source NIC re-enqueued a tracked transaction
	// (Node = source, Pkt = transaction id, Arg = attempt number).
	EvRetransmit

	numKinds
)

// String returns the short lower-case event name used by the sinks.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

var kindNames = [numKinds]string{
	EvInject:       "inject",
	EvRoute:        "route",
	EvVA:           "va",
	EvSA:           "sa",
	EvLink:         "link",
	EvEject:        "eject",
	EvVCAlloc:      "vc_alloc",
	EvVCRelease:    "vc_release",
	EvCreditStall:  "credit_stall",
	EvLinkStall:    "link_stall",
	EvSeekerLaunch: "seeker_launch",
	EvSeekerMatch:  "seeker_match",
	EvSeekerReturn: "seeker_return",
	EvFFUpgrade:    "ff_upgrade",
	EvScheme:       "scheme",
	EvWatchdog:     "watchdog",
	EvFaultFlit:    "fault_flit",
	EvFaultDead:    "fault_dead",
	EvPktDiscard:   "pkt_discard",
	EvRetransmit:   "retransmit",
}

// Event is one recorded occurrence. The struct is fixed-size and held
// by value in the recorder's ring, so recording never allocates. Field
// meaning varies slightly by Kind (see the Kind constants); unused
// fields are zero.
type Event struct {
	Cycle int64  // simulation cycle
	Pkt   uint64 // packet ID, 0 when no packet is involved
	Arg   int64  // kind-specific argument
	Node  int32  // router / NIC id
	Port  int16  // port index at Node (-1 when not applicable)
	VC    int16  // VC index (-1 when not applicable)
	Kind  Kind
}

// Tracer receives events from the simulator. Emit sites hold a Tracer
// and guard every Record call with a nil check, so a disabled tracer
// costs one predictable branch and nothing else.
type Tracer interface {
	Record(Event)
}
