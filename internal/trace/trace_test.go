package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestRecorderOrderAndWrap(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 6; i++ {
		r.Record(Event{Cycle: int64(i), Kind: EvSA})
	}
	if r.Total() != 6 || r.Len() != 4 || r.Dropped() != 2 {
		t.Fatalf("total=%d len=%d dropped=%d, want 6/4/2", r.Total(), r.Len(), r.Dropped())
	}
	evs := r.Events()
	for i, ev := range evs {
		if want := int64(i + 2); ev.Cycle != want {
			t.Fatalf("event %d: cycle %d, want %d (oldest two overwritten)", i, ev.Cycle, want)
		}
	}
	r.Reset()
	if r.Len() != 0 || r.Total() != 0 {
		t.Fatalf("reset recorder not empty: len=%d total=%d", r.Len(), r.Total())
	}
}

func TestRecorderBelowCapacity(t *testing.T) {
	r := NewRecorder(8)
	r.Record(Event{Cycle: 1, Kind: EvInject, Pkt: 7})
	r.Record(Event{Cycle: 2, Kind: EvEject, Pkt: 7})
	if r.Dropped() != 0 || r.Len() != 2 {
		t.Fatalf("dropped=%d len=%d, want 0/2", r.Dropped(), r.Len())
	}
	evs := r.Events()
	if evs[0].Kind != EvInject || evs[1].Kind != EvEject {
		t.Fatalf("order wrong: %v %v", evs[0].Kind, evs[1].Kind)
	}
}

// Record must never allocate — it runs inside the simulator hot path.
func TestRecordZeroAlloc(t *testing.T) {
	r := NewRecorder(1024)
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(Event{Cycle: 1, Kind: EvSA, Node: 3, Port: 1, VC: 2, Pkt: 9})
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f per call, want 0", allocs)
	}
}

func TestKindNamesComplete(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d has no name", k)
		}
		if strings.HasPrefix(k.String(), "kind(") {
			t.Fatalf("kind %d falls through to the fallback name", k)
		}
	}
}

func TestWriteJSONLParses(t *testing.T) {
	r := NewRecorder(16)
	r.Record(Event{Cycle: 5, Kind: EvInject, Node: 3, Port: -1, VC: -1, Pkt: 1, Arg: 12})
	r.Record(Event{Cycle: 9, Kind: EvSA, Node: 3, Port: 2, VC: 1, Pkt: 1, Arg: 0})
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, r); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("line %d not valid JSON: %v\n%s", lines, err, sc.Text())
		}
		if _, ok := obj["cycle"]; !ok {
			t.Fatalf("line %d missing cycle: %s", lines, sc.Text())
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("got %d JSONL lines, want 2", lines)
	}
	// The inject event carries no port/vc (negative indices omitted).
	if strings.Contains(strings.SplitN(buf.String(), "\n", 2)[0], `"port"`) {
		t.Fatal("negative port should be omitted from JSONL")
	}
}

// The Chrome sink must emit a single valid JSON object with the
// traceEvents array chrome://tracing expects, including the async
// packet span derived from an inject/eject pair.
func TestWriteChromeTraceParses(t *testing.T) {
	r := NewRecorder(16)
	r.Record(Event{Cycle: 5, Kind: EvInject, Node: 3, Port: -1, VC: -1, Pkt: 1, Arg: 12})
	r.Record(Event{Cycle: 30, Kind: EvEject, Node: 12, Port: -1, VC: 0, Pkt: 1, Arg: 25})
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	var begins, ends, instants int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "b":
			begins++
		case "e":
			ends++
		case "i":
			instants++
		}
		if _, ok := ev["ph"]; !ok {
			t.Fatalf("trace event missing ph: %v", ev)
		}
	}
	if begins != 1 || ends != 1 || instants != 2 {
		t.Fatalf("begins=%d ends=%d instants=%d, want 1/1/2", begins, ends, instants)
	}
}

func TestMetricsWindowsAndCSV(t *testing.T) {
	m := NewMetrics(2, 2, 10)
	// Cycle 0..9: router 1 stalls on credits 3x, sends 5 flits north,
	// averages 2 occupied VCs.
	for c := 0; c < 10; c++ {
		m.Occupancy(1, 2)
		if c < 3 {
			m.Stall(1, StallCredit)
		}
		if c < 5 {
			m.LinkFlit(1, 1) // North
		}
		m.Tick()
	}
	// Partial second window: one VA stall at router 0.
	m.Stall(0, StallVA)
	m.Occupancy(0, 1)
	m.Tick()
	m.Flush()

	var buf bytes.Buffer
	if err := m.WriteRouterCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+8 { // header + 2 windows x 4 routers
		t.Fatalf("got %d router CSV lines, want 9:\n%s", len(lines), buf.String())
	}
	if want := "0,10,1,1,0,0,3,0,2.000,5"; lines[2] != want {
		t.Fatalf("router 1 window 0 row = %q, want %q", lines[2], want)
	}
	if want := "10,1,0,0,0,1,0,0,1.000,0"; lines[5] != want {
		t.Fatalf("router 0 window 1 row = %q, want %q", lines[5], want)
	}

	buf.Reset()
	neighbor := func(r, dir int) int {
		if r == 1 && dir == 1 {
			return 3
		}
		return -1
	}
	if err := m.WriteLinkCSV(&buf, neighbor, func(int) string { return "N" }); err != nil {
		t.Fatal(err)
	}
	lk := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lk) != 1+2 { // header + router1 north link in both windows
		t.Fatalf("got %d link CSV lines, want 3:\n%s", len(lk), buf.String())
	}
	if want := "0,10,1,3,N,5,0.5000"; lk[1] != want {
		t.Fatalf("link row = %q, want %q", lk[1], want)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := NewManifest("seecsim", []string{"-scheme", "seec"})
	m.Seed = 42
	m.Note = "unit test"
	out := dir + "/trace.json"
	if err := m.Write(out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out + ".manifest.json")
	if err != nil {
		t.Fatal(err)
	}
	var got Manifest
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("manifest not valid JSON: %v", err)
	}
	if got.Seed != 42 || got.Tool != "seecsim" || got.Output != out {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.GoVersion == "" || got.GOMAXPROCS < 1 {
		t.Fatalf("environment fields missing: %+v", got)
	}
}
