package traffic

import (
	"fmt"

	"seec/internal/checkpoint"
)

// secSynthetic tags the synthetic traffic source's checkpoint section.
const secSynthetic uint32 = 0x5F01

// SaveState implements checkpoint.Stateful. Pattern, rate, mix and mesh
// shape are configuration (covered by the container's config hash); the
// mutable state is the per-node RNG streams and the pause flag.
func (s *Synthetic) SaveState(w *checkpoint.Writer) {
	w.Section(secSynthetic)
	w.Int(len(s.rngs))
	for _, r := range s.rngs {
		st := r.State()
		for _, v := range st {
			w.U64(v)
		}
	}
	w.Bool(s.paused)
}

// RestoreState implements checkpoint.Stateful. The receiver must be
// built by NewSynthetic with the same mesh shape.
func (s *Synthetic) RestoreState(r *checkpoint.Reader) error {
	r.Section(secSynthetic)
	n := r.SliceLen(len(s.rngs))
	if r.Err() == nil && n != len(s.rngs) {
		return fmt.Errorf("%w: %d traffic RNG streams, receiver has %d",
			checkpoint.ErrCorrupt, n, len(s.rngs))
	}
	for i := 0; i < n; i++ {
		var st [4]uint64
		for j := range st {
			st[j] = r.U64()
		}
		if r.Err() != nil {
			return r.Err()
		}
		if err := s.rngs[i].SetState(st); err != nil {
			return err
		}
	}
	s.paused = r.Bool()
	return r.Err()
}
