package traffic

import (
	"testing"

	"seec/internal/rng"
)

// FuzzDestInRange drives every pattern with fuzzer-chosen sources and
// mesh shapes: destinations must always be valid nodes.
func FuzzDestInRange(f *testing.F) {
	f.Add(uint8(8), uint8(8), uint16(0), uint8(0))
	f.Add(uint8(4), uint8(8), uint16(31), uint8(5))
	f.Add(uint8(2), uint8(2), uint16(3), uint8(8))
	f.Fuzz(func(t *testing.T, rows, cols uint8, src uint16, pat uint8) {
		r := int(rows%15) + 2
		c := int(cols%15) + 2
		p := Pattern(int(pat) % 9)
		s := NewSynthetic(r, c, p, 0.1, 1)
		n := r * c
		d := s.Dest(int(src)%n, rng.New(uint64(src)+1))
		if d < 0 || d >= n {
			t.Fatalf("%v on %dx%d: dest %d out of range", p, r, c, d)
		}
	})
}
