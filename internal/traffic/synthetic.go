// Package traffic provides the synthetic workload generators used in
// the paper's evaluation (uniform random, bit rotation, shuffle,
// transpose, ...) with the Table 4 packet-size mix (1-flit and 5-flit
// packets) and a Bernoulli open-loop injection process.
package traffic

import (
	"fmt"
	"math/bits"

	"seec/internal/noc"
	"seec/internal/rng"
)

// Pattern is a synthetic destination mapping.
type Pattern int

const (
	// UniformRandom sends each packet to a uniformly random node.
	UniformRandom Pattern = iota
	// BitComplement sends node s to ^s (within the node-id mask).
	BitComplement
	// BitReverse sends node s to the bit-reversal of s.
	BitReverse
	// BitRotation sends node s to s rotated right by one bit.
	BitRotation
	// Shuffle sends node s to s rotated left by one bit.
	Shuffle
	// Transpose sends (x, y) to (y, x).
	Transpose
	// Tornado sends (x, y) to (x + ceil(k/2) - 1 mod k, y).
	Tornado
	// Neighbor sends (x, y) to (x + 1 mod k, y).
	Neighbor
	// HotSpot sends a fraction of traffic to a single hot node and the
	// rest uniformly at random.
	HotSpot
)

// ParsePattern maps the names used by the AE appendix scripts to
// patterns.
func ParsePattern(s string) (Pattern, error) {
	switch s {
	case "uniform_random", "uniform-random", "ur":
		return UniformRandom, nil
	case "bit_complement", "bit-complement":
		return BitComplement, nil
	case "bit_reverse", "bit-reverse":
		return BitReverse, nil
	case "bit_rotation", "bit-rotation":
		return BitRotation, nil
	case "shuffle":
		return Shuffle, nil
	case "transpose":
		return Transpose, nil
	case "tornado":
		return Tornado, nil
	case "neighbor":
		return Neighbor, nil
	case "hotspot", "hot_spot":
		return HotSpot, nil
	}
	return 0, fmt.Errorf("traffic: unknown pattern %q", s)
}

// String implements fmt.Stringer.
func (p Pattern) String() string {
	switch p {
	case UniformRandom:
		return "uniform_random"
	case BitComplement:
		return "bit_complement"
	case BitReverse:
		return "bit_reverse"
	case BitRotation:
		return "bit_rotation"
	case Shuffle:
		return "shuffle"
	case Transpose:
		return "transpose"
	case Tornado:
		return "tornado"
	case Neighbor:
		return "neighbor"
	case HotSpot:
		return "hotspot"
	}
	return fmt.Sprintf("pattern(%d)", int(p))
}

// SizePoint is one entry of the packet-size mix.
type SizePoint struct {
	Flits  int
	Weight float64
}

// DefaultMix is Table 4's mixed traffic: 1-flit (requests/acks) and
// 5-flit (responses) packets in equal proportion.
func DefaultMix() []SizePoint {
	return []SizePoint{{Flits: 1, Weight: 0.5}, {Flits: 5, Weight: 0.5}}
}

// Synthetic is an open-loop Bernoulli traffic source implementing
// noc.TrafficSource.
type Synthetic struct {
	Pattern Pattern
	Rate    float64 // packets per node per cycle
	Class   int     // message class for generated packets (AE: inj-vnet=0)
	Mix     []SizePoint
	HotNode int     // HotSpot target
	HotFrac float64 // HotSpot fraction (default 0.2)

	rows, cols int
	nodes      int
	rngs       []*rng.Rand
	scratch    [][]noc.PacketSpec // per-node, so Generate is concurrency-safe across nodes
	paused     bool
}

// NewSynthetic builds a generator for a rows x cols mesh. Each node has
// an independent PRNG stream split from seed so that per-node processes
// are uncorrelated yet reproducible.
func NewSynthetic(rows, cols int, p Pattern, rate float64, seed uint64) *Synthetic {
	nodes := rows * cols
	base := rng.New(seed ^ 0xA5EEC)
	s := &Synthetic{
		Pattern: p,
		Rate:    rate,
		Mix:     DefaultMix(),
		HotFrac: 0.2,
		rows:    rows, cols: cols, nodes: nodes,
		rngs:    make([]*rng.Rand, nodes),
		scratch: make([][]noc.PacketSpec, nodes),
	}
	for i := range s.rngs {
		s.rngs[i] = base.Split()
	}
	return s
}

// Reseed rewinds every per-node PRNG stream to the state a fresh
// NewSynthetic with the given seed would start from, by re-running the
// constructor's split sequence. Used at warmup-fork points to give each
// fork an independent injection process over shared warmed-up state.
func (s *Synthetic) Reseed(seed uint64) {
	base := rng.New(seed ^ 0xA5EEC)
	for i := range s.rngs {
		s.rngs[i] = base.Split()
	}
}

// Pause stops injection (used to drain the network at the end of a
// measurement).
func (s *Synthetic) Pause() { s.paused = true }

// Resume restarts injection.
func (s *Synthetic) Resume() { s.paused = false }

// Dest returns the destination node the pattern maps src to.
func (s *Synthetic) Dest(src int, r *rng.Rand) int {
	n := s.nodes
	nb := bits.Len(uint(n - 1)) // id width in bits (n is a power of two for bit patterns)
	switch s.Pattern {
	case UniformRandom:
		return r.Intn(n)
	case BitComplement:
		return (^src) & (n - 1)
	case BitReverse:
		v := 0
		for i := 0; i < nb; i++ {
			v |= ((src >> i) & 1) << (nb - 1 - i)
		}
		return v % n
	case BitRotation:
		return ((src >> 1) | ((src & 1) << (nb - 1))) % n
	case Shuffle:
		return ((src << 1) | (src >> (nb - 1))) & (n - 1)
	case Transpose:
		x, y := src%s.cols, src/s.cols
		// Swap coordinates; on non-square meshes wrap into range.
		return (x%s.rows)*s.cols + (y % s.cols)
	case Tornado:
		x, y := src%s.cols, src/s.cols
		x = (x + (s.cols+1)/2 - 1) % s.cols
		return y*s.cols + x
	case Neighbor:
		x, y := src%s.cols, src/s.cols
		x = (x + 1) % s.cols
		return y*s.cols + x
	case HotSpot:
		if r.Bool(s.HotFrac) {
			return s.HotNode
		}
		return r.Intn(n)
	}
	panic("traffic: unknown pattern")
}

// pickSize draws a packet length from the mix.
func (s *Synthetic) pickSize(r *rng.Rand) int {
	total := 0.0
	for _, m := range s.Mix {
		total += m.Weight
	}
	v := r.Float64() * total
	for _, m := range s.Mix {
		v -= m.Weight
		if v < 0 {
			return m.Flits
		}
	}
	return s.Mix[len(s.Mix)-1].Flits
}

// Generate implements noc.TrafficSource.
func (s *Synthetic) Generate(cycle int64, node int) []noc.PacketSpec {
	out := s.scratch[node][:0]
	if s.paused || s.Rate <= 0 {
		return out
	}
	r := s.rngs[node]
	if !r.Bool(s.Rate) {
		return out
	}
	out = append(out, noc.PacketSpec{
		Dst:   s.Dest(node, r),
		Class: s.Class,
		Size:  s.pickSize(r),
	})
	s.scratch[node] = out
	return out
}

// Deliver implements noc.TrafficSource: synthetic sinks always consume.
func (s *Synthetic) Deliver(cycle int64, pkt *noc.Packet) bool { return true }

// ConcurrentGenerate implements noc.ConcurrentGenerator: each node
// draws from its own PRNG stream into its own scratch slice and reads
// no network state, so Generate may run concurrently across nodes.
func (s *Synthetic) ConcurrentGenerate() bool { return true }

// ConcurrentDeliver implements noc.ConcurrentDeliverer: the sink is
// stateless.
func (s *Synthetic) ConcurrentDeliver() bool { return true }

// Idle implements noc.IdleReporter: while paused or at zero rate,
// Generate returns nothing and draws no RNG, so idle cycles may be
// fast-forwarded exactly.
func (s *Synthetic) Idle() bool { return s.paused || s.Rate <= 0 }
