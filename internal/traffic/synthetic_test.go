package traffic

import (
	"math"
	"testing"

	"seec/internal/rng"
)

func TestParsePatternRoundTrip(t *testing.T) {
	for _, p := range []Pattern{UniformRandom, BitComplement, BitReverse,
		BitRotation, Shuffle, Transpose, Tornado, Neighbor, HotSpot} {
		got, err := ParsePattern(p.String())
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if got != p {
			t.Fatalf("round trip %v -> %v", p, got)
		}
	}
	if _, err := ParsePattern("nonsense"); err == nil {
		t.Fatal("unknown pattern accepted")
	}
}

func TestDestsInRange(t *testing.T) {
	r := rng.New(1)
	for _, dims := range [][2]int{{4, 4}, {8, 8}, {4, 8}} {
		for _, p := range []Pattern{UniformRandom, BitComplement, BitReverse,
			BitRotation, Shuffle, Transpose, Tornado, Neighbor, HotSpot} {
			s := NewSynthetic(dims[0], dims[1], p, 0.1, 1)
			n := dims[0] * dims[1]
			for src := 0; src < n; src++ {
				for trial := 0; trial < 4; trial++ {
					d := s.Dest(src, r)
					if d < 0 || d >= n {
						t.Fatalf("%v on %dx%d: dest %d out of range for src %d", p, dims[0], dims[1], d, src)
					}
				}
			}
		}
	}
}

// TestInvolutions: bit complement and transpose (on square meshes) are
// involutions — applying them twice returns the source.
func TestInvolutions(t *testing.T) {
	r := rng.New(1)
	for _, p := range []Pattern{BitComplement, Transpose} {
		s := NewSynthetic(8, 8, p, 0.1, 1)
		for src := 0; src < 64; src++ {
			d := s.Dest(src, r)
			if back := s.Dest(d, r); back != src {
				t.Fatalf("%v not an involution: %d -> %d -> %d", p, src, d, back)
			}
		}
	}
}

// TestBitPermutationsAreBijective: the bit patterns must be
// permutations of the node set on power-of-two meshes.
func TestBitPermutationsAreBijective(t *testing.T) {
	r := rng.New(1)
	for _, p := range []Pattern{BitComplement, BitReverse, BitRotation, Shuffle, Transpose, Tornado, Neighbor} {
		s := NewSynthetic(8, 8, p, 0.1, 1)
		seen := map[int]bool{}
		for src := 0; src < 64; src++ {
			d := s.Dest(src, r)
			if seen[d] {
				t.Fatalf("%v maps two sources to %d", p, d)
			}
			seen[d] = true
		}
	}
}

func TestTransposeSwapsCoordinates(t *testing.T) {
	r := rng.New(1)
	s := NewSynthetic(4, 4, Transpose, 0.1, 1)
	// (x=1, y=2) = node 9 -> (x=2, y=1) = node 6.
	if d := s.Dest(9, r); d != 6 {
		t.Fatalf("transpose(9) = %d want 6", d)
	}
	// Diagonal maps to itself.
	if d := s.Dest(5, r); d != 5 {
		t.Fatalf("transpose(5) = %d want 5", d)
	}
}

func TestNeighborPattern(t *testing.T) {
	r := rng.New(1)
	s := NewSynthetic(4, 4, Neighbor, 0.1, 1)
	if d := s.Dest(0, r); d != 1 {
		t.Fatalf("neighbor(0) = %d want 1", d)
	}
	if d := s.Dest(3, r); d != 0 {
		t.Fatalf("neighbor(3) = %d want 0 (wrap)", d)
	}
}

func TestTornadoHalfway(t *testing.T) {
	r := rng.New(1)
	s := NewSynthetic(8, 8, Tornado, 0.1, 1)
	// (0,0) -> (3,0): x + ceil(8/2)-1 = 3.
	if d := s.Dest(0, r); d != 3 {
		t.Fatalf("tornado(0) = %d want 3", d)
	}
}

func TestInjectionRateAccuracy(t *testing.T) {
	s := NewSynthetic(4, 4, UniformRandom, 0.2, 7)
	count := 0
	const cycles = 20000
	for cyc := int64(1); cyc <= cycles; cyc++ {
		for node := 0; node < 16; node++ {
			count += len(s.Generate(cyc, node))
		}
	}
	got := float64(count) / (cycles * 16)
	if math.Abs(got-0.2) > 0.01 {
		t.Fatalf("measured injection rate %.4f want 0.2", got)
	}
}

func TestPauseStopsInjection(t *testing.T) {
	s := NewSynthetic(4, 4, UniformRandom, 0.5, 7)
	s.Pause()
	for cyc := int64(1); cyc < 100; cyc++ {
		for node := 0; node < 16; node++ {
			if len(s.Generate(cyc, node)) != 0 {
				t.Fatal("paused source generated traffic")
			}
		}
	}
	s.Resume()
	total := 0
	for cyc := int64(100); cyc < 200; cyc++ {
		for node := 0; node < 16; node++ {
			total += len(s.Generate(cyc, node))
		}
	}
	if total == 0 {
		t.Fatal("resumed source generated nothing")
	}
}

func TestSizeMixDistribution(t *testing.T) {
	s := NewSynthetic(4, 4, UniformRandom, 1.0, 7)
	ones, fives := 0, 0
	for cyc := int64(1); cyc < 4000; cyc++ {
		for node := 0; node < 16; node++ {
			for _, spec := range s.Generate(cyc, node) {
				switch spec.Size {
				case 1:
					ones++
				case 5:
					fives++
				default:
					t.Fatalf("unexpected packet size %d", spec.Size)
				}
			}
		}
	}
	frac := float64(ones) / float64(ones+fives)
	if math.Abs(frac-0.5) > 0.03 {
		t.Fatalf("size mix %.3f want ~0.5 (Table 4: mixed 1-/5-flit)", frac)
	}
}

func TestHotSpotConcentration(t *testing.T) {
	s := NewSynthetic(4, 4, HotSpot, 1.0, 7)
	s.HotNode = 5
	s.HotFrac = 0.5
	r := rng.New(9)
	hot := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		if s.Dest(0, r) == 5 {
			hot++
		}
	}
	// 50% direct + ~1/16 of the uniform remainder.
	want := 0.5 + 0.5/16
	if math.Abs(float64(hot)/trials-want) > 0.03 {
		t.Fatalf("hotspot fraction %.3f want ~%.3f", float64(hot)/trials, want)
	}
}

func TestPerNodeStreamsIndependent(t *testing.T) {
	s := NewSynthetic(4, 4, UniformRandom, 0.5, 7)
	// Two nodes must not produce identical injection sequences.
	var seq0, seq1 []int
	for cyc := int64(1); cyc < 500; cyc++ {
		seq0 = append(seq0, len(s.Generate(cyc, 0)))
		seq1 = append(seq1, len(s.Generate(cyc, 1)))
	}
	same := true
	for i := range seq0 {
		if seq0[i] != seq1[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("node 0 and node 1 share an injection stream")
	}
}
