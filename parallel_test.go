package seec_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"seec"
)

// The public sweep helpers run their points concurrently but promise
// results identical to serial execution: every job's RNG seed derives
// from its own coordinates via Config.SweepSeed, never from shared or
// ambient state.

func curveCfg() seec.Config {
	cfg := seec.DefaultConfig()
	cfg.Rows, cfg.Cols = 4, 4
	cfg.Scheme = seec.SchemeSEEC
	cfg.SimCycles = 2000
	return cfg
}

// TestLatencyCurveParallelDeterminism: the full CurvePoint slice —
// every statistic of every point — must match between 1 and 8 workers.
func TestLatencyCurveParallelDeterminism(t *testing.T) {
	rates := []float64{0.02, 0.08, 0.14, 0.20, 0.26}
	serial, err := seec.LatencyCurveCtx(context.Background(), curveCfg(), rates, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range []int{2, 8} {
		par, err := seec.LatencyCurveCtx(context.Background(), curveCfg(), rates, j)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("curve differs between workers=1 and workers=%d", j)
		}
	}
}

// TestSaturationThroughputParallelDeterminism: the search's fan-out
// shape is fixed, so the measured knee must not depend on workers.
func TestSaturationThroughputParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation search is slow")
	}
	cfg := curveCfg()
	cfg.SimCycles = 4000
	satSerial, resSerial, err := seec.SaturationThroughputCtx(context.Background(), cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	satPar, resPar, err := seec.SaturationThroughputCtx(context.Background(), cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if satSerial != satPar || !reflect.DeepEqual(resSerial, resPar) {
		t.Fatalf("saturation differs: serial %.4f vs parallel %.4f", satSerial, satPar)
	}
}

// TestLatencyCurveCancellation: a pre-cancelled context must abort the
// sweep with the context's error, not run it.
func TestLatencyCurveCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := seec.LatencyCurveCtx(ctx, curveCfg(), []float64{0.02, 0.10, 0.20}, 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSweepSeedCoordinates: derived seeds are stable, and every sweep
// coordinate — base seed, scheme, pattern, rate, mesh, tag —
// contributes to the stream identity.
func TestSweepSeedCoordinates(t *testing.T) {
	base := curveCfg()
	if base.SweepSeed() != base.SweepSeed() {
		t.Fatal("SweepSeed not stable")
	}
	seen := map[uint64]string{base.SweepSeed(): "base"}
	variant := func(name string, mutate func(*seec.Config)) {
		c := base
		mutate(&c)
		s := c.SweepSeed()
		if prev, dup := seen[s]; dup {
			t.Errorf("variant %q collides with %q", name, prev)
		}
		seen[s] = name
	}
	variant("seed", func(c *seec.Config) { c.Seed = 2 })
	variant("scheme", func(c *seec.Config) { c.Scheme = seec.SchemeMSEEC })
	variant("pattern", func(c *seec.Config) { c.Pattern = "transpose" })
	variant("rate", func(c *seec.Config) { c.InjectionRate = 0.06 })
	variant("mesh", func(c *seec.Config) { c.Rows = 8 })
	variant("vcs", func(c *seec.Config) { c.VCsPerVNet = 2 })
	if tagged := base.SweepSeed("canneal"); tagged == base.SweepSeed() {
		t.Error("tag does not change the derived seed")
	}
}
