package seec

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"os"

	"seec/internal/area"
	"seec/internal/rng"
	"seec/internal/runner"
	"seec/internal/stats"
)

// Result summarizes one synthetic-traffic run.
type Result struct {
	Config Config

	AvgLatency float64 // end-to-end packet latency, cycles
	P50Latency int64
	P99Latency int64
	MaxLatency int64

	ThroughputFlits   float64 // received flits / node / cycle
	ThroughputPackets float64 // received packets / node / cycle

	ReceivedPackets int64
	InjectedPackets int64

	FFFraction    float64 // fraction of received packets that used Free-Flow
	FFBufferedAvg float64 // Fig. 10b: mean cycles before upgrade (FF packets)
	FFFreeAvg     float64 // Fig. 10b: mean cycles in bufferless traversal
	RegLatencyAvg float64 // Fig. 10b: mean latency of regular packets

	MisrouteHops int64

	AvgLinkEnergy  float64 // flit-traversal units per cycle
	PeakLinkEnergy float64

	Stalled bool // liveness failure observed (deadlock/livelock symptom)

	// Fault-layer outcomes, all zero when Config.Faults is empty.
	Retransmits   int64 // packets re-enqueued by timeout or NACK
	FaultDiscards int64 // packets discarded at the destination NIC
	DeadLinks     int   // links permanently killed during the run

	// Confidence-interval outcomes, all zero when Config.StopCI is 0.
	// StopCycle is the cycle the run actually ended at — earlier than
	// Warmup+SimCycles when the precision target was met early.
	CIMean      float64 `json:",omitempty"`
	CIHalfWidth float64 `json:",omitempty"`
	CIBatches   int     `json:",omitempty"`
	StopCycle   int64   `json:",omitempty"`
}

// header returns the aligned text header matching Result.Row.
func resultHeader() string {
	return fmt.Sprintf("%-11s %8s %8s %8s %9s %9s %7s %7s", "scheme", "rate", "avgLat", "p99", "thrFlit", "recv", "%FF", "stall")
}

// Row renders the result as one aligned text row.
func (r Result) Row() string {
	stall := ""
	if r.Stalled {
		stall = "STALL"
	}
	return fmt.Sprintf("%-11s %8.3f %8.1f %8d %9.4f %9d %6.1f%% %7s",
		r.Config.Scheme, r.Config.InjectionRate, r.AvgLatency, r.P99Latency,
		r.ThroughputFlits, r.ReceivedPackets, 100*r.FFFraction, stall)
}

// RunSynthetic executes one synthetic-traffic simulation: warmup +
// SimCycles measured cycles.
func RunSynthetic(cfg Config) (Result, error) {
	return RunSyntheticCtx(context.Background(), cfg)
}

// RunSyntheticCtx is RunSynthetic with cancellation: the simulation
// checks ctx every 1024 cycles and aborts with ctx's error, so per-job
// deadlines from the sweep harness actually interrupt a stuck run.
//
// It is also where the checkpoint machinery hooks in. With
// Config.ResumePath set, the run restores from that checkpoint instead
// of starting fresh (missing file = fresh start); with
// Config.CheckpointPath set, it saves its state periodically and at
// run end. Because the run loop's chunking is unobservable (Run's
// fast-forward is exact) and checkpoints capture the complete state
// between Steps, a killed run resumed from its last checkpoint
// produces output byte-identical to the uninterrupted run. With
// Config.StopCI set, the run additionally stops as soon as the latency
// CI reaches the requested relative precision.
func RunSyntheticCtx(ctx context.Context, cfg Config) (Result, error) {
	var s *Sim
	var err error
	resumed := false
	if cfg.ResumePath != "" {
		s, err = NewSimFromCheckpointFile(cfg, cfg.ResumePath)
		resumed = err == nil
		if err != nil && os.IsNotExist(err) {
			s, err = NewSim(cfg)
		}
	} else {
		s, err = NewSim(cfg)
	}
	if err != nil {
		return Result{}, err
	}
	defer s.Close()
	var done func()
	if cfg.Instrument != nil {
		done = cfg.Instrument(s)
	}
	// Telemetry hooks come after Instrument so the watchdog the
	// instrument layer installs (if any) can report stall verdicts.
	var hb func(RunEvent)
	if cfg.Telemetry != nil {
		hb = cfg.Telemetry(s)
	}
	if hb != nil {
		if resumed {
			hb(RunEvent{Kind: RunCheckpointRestore, Cycle: s.Cycle(), Total: cfg.Warmup + cfg.SimCycles})
		}
		if s.Net != nil && s.Net.Watchdog != nil {
			hb := hb
			s.Net.Watchdog.OnFire = func(cycle, sinceEject int64) {
				hb(RunEvent{Kind: RunWatchdogStall, Cycle: cycle, Arg: sinceEject})
			}
		}
	}
	res, err := runSyntheticLoop(ctx, s, cfg, hb)
	if err != nil {
		return Result{}, err
	}
	if done != nil {
		done()
	}
	return res, nil
}

// runSyntheticLoop steps s to Warmup+SimCycles in cancellation-checked
// chunks, handling periodic checkpoints, CI early stopping and
// telemetry heartbeats (hb may be nil), and returns the final snapshot.
// The chunk size never influences results: checkpoint saves, heartbeats
// and the other telemetry events are pure observers and the CI stopper
// only moves the end of the run, deterministically, as a function of
// the sample stream.
func runSyntheticLoop(ctx context.Context, s *Sim, cfg Config, hb func(RunEvent)) (Result, error) {
	total := cfg.Warmup + cfg.SimCycles
	every := cfg.CheckpointEvery
	if every <= 0 {
		every = DefaultCheckpointEvery
	}
	nextSave := int64(math.MaxInt64)
	if cfg.CheckpointPath != "" {
		nextSave = (s.Cycle()/every + 1) * every
	}
	hbEvery := cfg.HeartbeatEvery
	if hbEvery <= 0 {
		hbEvery = DefaultHeartbeatEvery
	}
	nextBeat := int64(math.MaxInt64)
	if hb != nil {
		nextBeat = (s.Cycle()/hbEvery + 1) * hbEvery
	}
	var bm *stats.BatchMeans
	if cfg.StopCI > 0 && s.Net != nil {
		bm = stats.NewBatchMeans(int64(32 * s.Nodes()))
	}
	for s.Cycle() < total {
		chunk := total - s.Cycle()
		if chunk > 1024 {
			chunk = 1024
		}
		s.Run(chunk)
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		if s.Cycle() >= nextBeat {
			hb(RunEvent{Kind: RunHeartbeat, Cycle: s.Cycle(), Total: total,
				InFlight: int64(s.InFlightPackets())})
			nextBeat = (s.Cycle()/hbEvery + 1) * hbEvery
		}
		if s.Cycle() >= nextSave {
			if err := s.SaveCheckpointFile(cfg.CheckpointPath); err != nil {
				return Result{}, err
			}
			if hb != nil {
				hb(RunEvent{Kind: RunCheckpointSave, Cycle: s.Cycle(), Total: total})
			}
			nextSave = (s.Cycle()/every + 1) * every
		}
		if bm != nil && s.Cycle() > cfg.Warmup {
			c := s.Collector()
			bm.Update(c.Latency.Count(), c.Latency.Sum())
			if est, ok := bm.Estimate(); ok && est.Rel() <= cfg.StopCI {
				if hb != nil {
					hb(RunEvent{Kind: RunCIStop, Cycle: s.Cycle(), Total: total,
						Arg: int64(est.Batches)})
				}
				break
			}
		}
	}
	if cfg.CheckpointPath != "" {
		if err := s.SaveCheckpointFile(cfg.CheckpointPath); err != nil {
			return Result{}, err
		}
		if hb != nil {
			hb(RunEvent{Kind: RunCheckpointSave, Cycle: s.Cycle(), Total: total})
		}
	}
	if bm != nil {
		if est, ok := bm.Estimate(); ok {
			s.ci = &est
		}
	}
	if hb != nil {
		hb(RunEvent{Kind: RunDone, Cycle: s.Cycle(), Total: total})
	}
	res := s.Snapshot()
	if bm != nil {
		res.StopCycle = s.Cycle()
		if s.ci != nil {
			res.CIMean = s.ci.Mean
			res.CIHalfWidth = s.ci.HalfWidth
			res.CIBatches = s.ci.Batches
		}
	}
	return res, nil
}

// Fork describes one measurement run branched off a shared warmed-up
// checkpoint (see RunSyntheticForkedCtx). The zero value re-runs the
// base configuration unchanged.
type Fork struct {
	// Seed, when non-zero, reseeds every RNG stream (network and
	// per-node traffic) at the fork point, giving the fork an
	// independent measurement sample over the same warmed-up state.
	Seed uint64
	// Rate, when positive, overrides the injection rate from the fork
	// point on — the warmup cost of a rate sweep is then paid once.
	Rate float64
}

// RunSyntheticForked is RunSyntheticForkedCtx without cancellation.
func RunSyntheticForked(cfg Config, forks []Fork) ([]Result, error) {
	return RunSyntheticForkedCtx(context.Background(), cfg, forks, 0)
}

// RunSyntheticForkedCtx amortizes warmup across related measurement
// runs: it warms one simulation up to cfg.Warmup, checkpoints it to
// memory, then restores the checkpoint once per fork and runs each
// fork's measurement phase (applying its Seed/Rate overrides at the
// fork point) across workers concurrent workers. A fork with zero
// overrides is byte-identical to RunSynthetic of the same config.
// Results come back in fork order and record the overridden Seed/Rate
// in their Config. Instrument and Telemetry hooks and checkpoint files
// are not applied to forks; CI early stopping (cfg.StopCI) is.
// Deflection schemes are not checkpointable and fail with
// checkpoint.ErrUnsupported.
func RunSyntheticForkedCtx(ctx context.Context, cfg Config, forks []Fork, workers int) ([]Result, error) {
	base := cfg
	base.Instrument, base.Telemetry = nil, nil
	base.CheckpointPath, base.ResumePath = "", ""
	s, err := NewSim(base)
	if err != nil {
		return nil, err
	}
	for s.Cycle() < base.Warmup {
		chunk := base.Warmup - s.Cycle()
		if chunk > 1024 {
			chunk = 1024
		}
		s.Run(chunk)
		if err := ctx.Err(); err != nil {
			s.Close()
			return nil, err
		}
	}
	var buf bytes.Buffer
	err = s.SaveCheckpoint(&buf)
	s.Close()
	if err != nil {
		return nil, err
	}
	snap := buf.Bytes()
	return runner.Sweep(ctx, forks, func(ctx context.Context, fk Fork) (Result, error) {
		fs, err := NewSimFromCheckpoint(base, bytes.NewReader(snap))
		if err != nil {
			return Result{}, err
		}
		defer fs.Close()
		fcfg := base
		if fk.Seed != 0 {
			fcfg.Seed = fk.Seed
			fs.Reseed(fk.Seed)
		}
		if fk.Rate > 0 {
			fcfg.InjectionRate = fk.Rate
			fs.Synthetic.Rate = fk.Rate
		}
		fs.Cfg = fcfg // Snapshot stamps Result.Config with the fork's overrides
		return runSyntheticLoop(ctx, fs, fcfg, nil)
	}, runner.WithWorkers(workers))
}

// Reseed rewinds every RNG stream — the network's arbitration stream
// and the per-node traffic streams — to the deterministic state a
// fresh simulation with the given seed would start from, leaving all
// other simulation state (buffers, in-flight packets, statistics)
// untouched. Used at warmup-fork points to give each fork an
// independent measurement sample from the same warmed-up state.
// Credit-flow networks only.
func (s *Sim) Reseed(seed uint64) {
	s.Net.Rng.SetState(rng.New(seed).State())
	if s.Synthetic != nil {
		s.Synthetic.Reseed(seed)
	}
}

// Drain stops traffic generation and steps until every in-flight
// packet — including transactions the fault layer is still
// retransmitting — has been delivered, or max cycles pass. Returns
// whether the system fully drained. Used by conservation checks: after
// a faulted run, injected == received + discarded-and-retransmitted.
func (s *Sim) Drain(max int64) bool {
	if s.Net == nil {
		return s.Defl.Drained()
	}
	s.Net.Traffic = nil
	return s.Net.Drain(max)
}

// Snapshot summarizes the run so far.
func (s *Sim) Snapshot() Result {
	c := s.Collector()
	e := s.Energy()
	r := Result{
		Config:            s.Cfg,
		AvgLatency:        c.AvgLatency(),
		P50Latency:        c.Latency.Percentile(50),
		P99Latency:        c.Latency.Percentile(99),
		MaxLatency:        c.MaxLatency(),
		ThroughputFlits:   c.Throughput(s.Cycle(), s.Nodes()),
		ThroughputPackets: c.PacketThroughput(s.Cycle(), s.Nodes()),
		ReceivedPackets:   c.ReceivedPackets,
		InjectedPackets:   c.InjectedPackets,
		FFFraction:        c.FFFraction(),
		FFBufferedAvg:     c.FFBufferedPart.Mean(),
		FFFreeAvg:         c.FFFreePart.Mean(),
		RegLatencyAvg:     c.RegLatency.Mean(),
		MisrouteHops:      c.MisrouteHops,
		AvgLinkEnergy:     e.AvgLinkEnergy(),
		PeakLinkEnergy:    e.PeakLinkEnergy(),
		Stalled:           s.Stalled(5000),
	}
	if fi := s.Faults; fi != nil {
		fs := fi.Stats()
		r.Retransmits = fs.Retransmits
		r.FaultDiscards = fs.Discards()
		r.DeadLinks = fs.LinksKilled
	}
	return r
}

// SweepSeed derives the per-job RNG seed for this configuration from
// (Seed, scheme, routing, pattern, injection rate, mesh size, VC
// shape), plus any extra tags (e.g. an application name). Sweep
// helpers (LatencyCurve, SaturationThroughput, the internal/exp
// generators) seed every job this way rather than from shared or
// ambient state, so each sweep point owns an independent, reproducible
// RNG stream and parallel execution at any worker count is
// byte-identical to serial execution. RunSynthetic itself always uses
// Config.Seed exactly as given.
func (c Config) SweepSeed(tags ...string) uint64 {
	h := rng.NewSeedHash(c.Seed).
		String(string(c.Scheme)).
		String(string(c.Routing)).
		String(c.Pattern).
		Uint64(math.Float64bits(c.InjectionRate)).
		Uint64(uint64(c.Rows)).
		Uint64(uint64(c.Cols)).
		Uint64(uint64(c.VCsPerVNet)).
		Uint64(uint64(c.VNets))
	// Mixed only when set, so fault-free sweeps keep their historical
	// seeds (golden outputs stay byte-identical).
	if c.Faults != "" {
		h = h.String("faults").String(c.Faults)
	}
	for _, tag := range tags {
		h = h.String(tag)
	}
	return h.Seed()
}

// CurvePoint is one point on a latency-throughput curve.
type CurvePoint struct {
	Rate   float64
	Result Result
}

// LatencyCurve sweeps injection rates and returns the latency curve
// (Fig. 8's data). Points past severe saturation still return (with
// saturated latency values), matching how the paper plots its curves.
// The points run concurrently across runtime.GOMAXPROCS(0) workers;
// each derives its seed via Config.SweepSeed, so the curve is
// identical at any parallelism.
func LatencyCurve(cfg Config, rates []float64) ([]CurvePoint, error) {
	return LatencyCurveCtx(context.Background(), cfg, rates, 0)
}

// LatencyCurveCtx is LatencyCurve with explicit cancellation and
// worker-count control (workers <= 0 selects runtime.GOMAXPROCS(0)).
func LatencyCurveCtx(ctx context.Context, cfg Config, rates []float64, workers int) ([]CurvePoint, error) {
	pts, err := runner.Sweep(ctx, rates, func(_ context.Context, rate float64) (CurvePoint, error) {
		c := cfg
		c.InjectionRate = rate
		c.Seed = c.SweepSeed()
		res, err := RunSynthetic(c)
		return CurvePoint{Rate: rate, Result: res}, err
	}, runner.WithWorkers(workers))
	if err != nil {
		return nil, err
	}
	return pts, nil
}

// ZeroLoadLatency measures the average latency at a near-zero rate.
func ZeroLoadLatency(cfg Config) (float64, error) {
	return zeroLoadLatencyWith(context.Background(), cfg, defaultRun)
}

// defaultRun adapts RunSynthetic to the injectable-run signature used
// by the saturation search.
func defaultRun(_ context.Context, cfg Config) (Result, error) {
	return RunSynthetic(cfg)
}

// zeroLoadLatencyWith is ZeroLoadLatency with the simulation routed
// through run, so callers (the sweep planner's chokepoint) can
// memoize or instrument the probe.
func zeroLoadLatencyWith(ctx context.Context, cfg Config, run func(context.Context, Config) (Result, error)) (float64, error) {
	c := cfg
	c.InjectionRate = 0.005
	c.Seed = c.SweepSeed()
	if c.SimCycles < 20000 {
		c.SimCycles = 20000
	}
	res, err := run(ctx, c)
	if err != nil {
		return 0, err
	}
	return res.AvgLatency, nil
}

// SaturationThroughput returns the highest injection rate (packets/
// node/cycle) at which average latency stays below 3x the zero-load
// latency — the standard saturation definition. The returned Result is
// from the last sub-saturation run.
func SaturationThroughput(cfg Config) (float64, Result, error) {
	return SaturationThroughputCtx(context.Background(), cfg, 0)
}

// SaturationThroughputCtx is SaturationThroughput with explicit
// cancellation and worker-count control. The search runs a coarse
// geometric probe phase concurrently, then narrows the bracketing
// interval with fixed three-point sections whose points also run
// concurrently. The fan-out shape is fixed — never a function of the
// worker count — and every run derives its seed via Config.SweepSeed,
// so the measured saturation point is identical at any parallelism.
func SaturationThroughputCtx(ctx context.Context, cfg Config, workers int) (float64, Result, error) {
	return SaturationThroughputWith(ctx, cfg, workers, defaultRun)
}

// SaturationThroughputWith is SaturationThroughputCtx with every
// probe simulation (including the zero-load calibration run) routed
// through run. The search shape, the probe configs, and their derived
// seeds are identical to the direct path — run only decides how each
// config executes — so a memoizing run function (the sweep planner)
// resolves a repeated search entirely from cache: the probe sequence
// is deterministic, hence so is the sequence of cache keys.
func SaturationThroughputWith(ctx context.Context, cfg Config, workers int, run func(context.Context, Config) (Result, error)) (float64, Result, error) {
	zero, err := zeroLoadLatencyWith(ctx, cfg, run)
	if err != nil {
		return 0, Result{}, err
	}
	limit := 3 * zero
	type probe struct {
		good bool
		res  Result
	}
	at := func(ctx context.Context, rate float64) (probe, error) {
		c := cfg
		c.InjectionRate = rate
		c.Seed = c.SweepSeed()
		res, err := run(ctx, c)
		if err != nil {
			return probe{}, err
		}
		return probe{good: !res.Stalled && res.AvgLatency > 0 && res.AvgLatency <= limit, res: res}, nil
	}
	// Phase 1: exponential probe up, all points at once, to bracket the
	// knee between the last good and the first bad grid point.
	grid := []float64{0.02, 0.05, 0.11, 0.23, 0.47, 1.0}
	ps, err := runner.Sweep(ctx, grid, at, runner.WithWorkers(workers))
	if err != nil {
		return 0, Result{}, err
	}
	lo, hi := 0.005, 1.0
	var last Result
	for i, p := range ps {
		if !p.good {
			hi = grid[i]
			break
		}
		lo, last = grid[i], p.res
	}
	// Phase 2: shrink the bracket 4x per round by evaluating the three
	// interior quartile points together.
	for hi-lo > 0.005 {
		mids := []float64{lo + (hi-lo)/4, lo + (hi-lo)/2, lo + 3*(hi-lo)/4}
		ps, err := runner.Sweep(ctx, mids, at, runner.WithWorkers(workers))
		if err != nil {
			return 0, Result{}, err
		}
		newHi := hi
		for i, p := range ps {
			if !p.good {
				newHi = mids[i]
				break
			}
			lo, last = mids[i], p.res
		}
		hi = newHi
	}
	return lo, last, nil
}

// AppResult summarizes one application run (Figs. 14-15).
type AppResult struct {
	App        string
	Scheme     Scheme
	Runtime    int64 // cycles to complete the transaction target
	AvgLatency float64
	MaxLatency int64
	P99Latency int64
	Completed  int64
	Stalled    bool

	// ClassAvgLatency holds per-message-class mean latencies (indexed
	// by coherence class: request, forward, response, ack, writeback,
	// wb-ack).
	ClassAvgLatency []float64
}

// RunApplication drives a coherence workload to its transaction target
// (or maxCycles) and reports runtime and packet-latency statistics.
func RunApplication(cfg Config, app string, txns, maxCycles int64) (AppResult, error) {
	return RunApplicationCtx(context.Background(), cfg, app, txns, maxCycles)
}

// RunApplicationCtx is RunApplication with cooperative cancellation: the
// context is polled every 1024 cycles, so per-job deadlines in the
// experiment harness can bound a wedged run.
func RunApplicationCtx(ctx context.Context, cfg Config, app string, txns, maxCycles int64) (AppResult, error) {
	s, err := NewAppSim(cfg, app, txns)
	if err != nil {
		return AppResult{}, err
	}
	defer s.Close()
	var done func()
	if cfg.Instrument != nil {
		done = cfg.Instrument(s)
	}
	var hb func(RunEvent)
	if cfg.Telemetry != nil {
		hb = cfg.Telemetry(s)
	}
	hbEvery := cfg.HeartbeatEvery
	if hbEvery <= 0 {
		hbEvery = DefaultHeartbeatEvery
	}
	nextBeat := int64(math.MaxInt64)
	if hb != nil {
		nextBeat = hbEvery
		if s.Net != nil && s.Net.Watchdog != nil {
			hb := hb
			s.Net.Watchdog.OnFire = func(cycle, sinceEject int64) {
				hb(RunEvent{Kind: RunWatchdogStall, Cycle: cycle, Arg: sinceEject})
			}
		}
	}
	for !s.App.Done() && s.Cycle() < maxCycles {
		if s.Cycle()&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return AppResult{}, err
			}
			if s.Cycle() >= nextBeat {
				hb(RunEvent{Kind: RunHeartbeat, Cycle: s.Cycle(), Total: maxCycles,
					InFlight: int64(s.InFlightPackets())})
				nextBeat = (s.Cycle()/hbEvery + 1) * hbEvery
			}
		}
		s.Step()
	}
	if hb != nil {
		hb(RunEvent{Kind: RunDone, Cycle: s.Cycle(), Total: maxCycles})
	}
	if done != nil {
		done()
	}
	c := s.Collector()
	perClass := make([]float64, len(c.ClassLatency))
	for i := range perClass {
		perClass[i] = c.ClassAvgLatency(i)
	}
	return AppResult{
		App:             app,
		Scheme:          cfg.Scheme,
		Runtime:         s.Cycle(),
		AvgLatency:      c.AvgLatency(),
		MaxLatency:      c.MaxLatency(),
		P99Latency:      c.Latency.Percentile(99),
		Completed:       s.App.Stats.Completed,
		Stalled:         s.Stalled(5000),
		ClassAvgLatency: perClass,
	}, nil
}

// AreaBreakdown re-exports the analytic router area model (Fig. 7).
type AreaBreakdown = area.Breakdown

// AreaReport sizes each scheme's minimum-buffer router configuration
// (Fig. 7) with 128-bit links.
func AreaReport() []AreaBreakdown {
	var out []AreaBreakdown
	for _, s := range area.Fig7Schemes() {
		out = append(out, area.Router(area.SchemeConfig(s, 128)))
	}
	return out
}
