package seec

import (
	"fmt"

	"seec/internal/area"
)

// Result summarizes one synthetic-traffic run.
type Result struct {
	Config Config

	AvgLatency float64 // end-to-end packet latency, cycles
	P50Latency int64
	P99Latency int64
	MaxLatency int64

	ThroughputFlits   float64 // received flits / node / cycle
	ThroughputPackets float64 // received packets / node / cycle

	ReceivedPackets int64
	InjectedPackets int64

	FFFraction    float64 // fraction of received packets that used Free-Flow
	FFBufferedAvg float64 // Fig. 10b: mean cycles before upgrade (FF packets)
	FFFreeAvg     float64 // Fig. 10b: mean cycles in bufferless traversal
	RegLatencyAvg float64 // Fig. 10b: mean latency of regular packets

	MisrouteHops int64

	AvgLinkEnergy  float64 // flit-traversal units per cycle
	PeakLinkEnergy float64

	Stalled bool // liveness failure observed (deadlock/livelock symptom)
}

// header returns the aligned text header matching Result.Row.
func resultHeader() string {
	return fmt.Sprintf("%-11s %8s %8s %8s %9s %9s %7s %7s", "scheme", "rate", "avgLat", "p99", "thrFlit", "recv", "%FF", "stall")
}

// Row renders the result as one aligned text row.
func (r Result) Row() string {
	stall := ""
	if r.Stalled {
		stall = "STALL"
	}
	return fmt.Sprintf("%-11s %8.3f %8.1f %8d %9.4f %9d %6.1f%% %7s",
		r.Config.Scheme, r.Config.InjectionRate, r.AvgLatency, r.P99Latency,
		r.ThroughputFlits, r.ReceivedPackets, 100*r.FFFraction, stall)
}

// RunSynthetic executes one synthetic-traffic simulation: warmup +
// SimCycles measured cycles.
func RunSynthetic(cfg Config) (Result, error) {
	s, err := NewSim(cfg)
	if err != nil {
		return Result{}, err
	}
	total := cfg.Warmup + cfg.SimCycles
	for s.Cycle() < total {
		s.Step()
	}
	return s.Snapshot(), nil
}

// Snapshot summarizes the run so far.
func (s *Sim) Snapshot() Result {
	c := s.Collector()
	e := s.Energy()
	r := Result{
		Config:            s.Cfg,
		AvgLatency:        c.AvgLatency(),
		P50Latency:        c.Latency.Percentile(50),
		P99Latency:        c.Latency.Percentile(99),
		MaxLatency:        c.MaxLatency(),
		ThroughputFlits:   c.Throughput(s.Cycle(), s.Nodes()),
		ThroughputPackets: c.PacketThroughput(s.Cycle(), s.Nodes()),
		ReceivedPackets:   c.ReceivedPackets,
		InjectedPackets:   c.InjectedPackets,
		FFFraction:        c.FFFraction(),
		FFBufferedAvg:     c.FFBufferedPart.Mean(),
		FFFreeAvg:         c.FFFreePart.Mean(),
		RegLatencyAvg:     c.RegLatency.Mean(),
		MisrouteHops:      c.MisrouteHops,
		AvgLinkEnergy:     e.AvgLinkEnergy(),
		PeakLinkEnergy:    e.PeakLinkEnergy(),
		Stalled:           s.Stalled(5000),
	}
	return r
}

// CurvePoint is one point on a latency-throughput curve.
type CurvePoint struct {
	Rate   float64
	Result Result
}

// LatencyCurve sweeps injection rates and returns the latency curve
// (Fig. 8's data). Points past severe saturation still return (with
// saturated latency values), matching how the paper plots its curves.
func LatencyCurve(cfg Config, rates []float64) ([]CurvePoint, error) {
	pts := make([]CurvePoint, 0, len(rates))
	for _, rate := range rates {
		c := cfg
		c.InjectionRate = rate
		res, err := RunSynthetic(c)
		if err != nil {
			return nil, err
		}
		pts = append(pts, CurvePoint{Rate: rate, Result: res})
	}
	return pts, nil
}

// ZeroLoadLatency measures the average latency at a near-zero rate.
func ZeroLoadLatency(cfg Config) (float64, error) {
	c := cfg
	c.InjectionRate = 0.005
	if c.SimCycles < 20000 {
		c.SimCycles = 20000
	}
	res, err := RunSynthetic(c)
	if err != nil {
		return 0, err
	}
	return res.AvgLatency, nil
}

// SaturationThroughput returns the highest injection rate (packets/
// node/cycle) at which average latency stays below 3x the zero-load
// latency — the standard saturation definition, measured by bisection.
// The returned Result is from the last sub-saturation run.
func SaturationThroughput(cfg Config) (float64, Result, error) {
	zero, err := ZeroLoadLatency(cfg)
	if err != nil {
		return 0, Result{}, err
	}
	limit := 3 * zero
	ok := func(rate float64) (bool, Result, error) {
		c := cfg
		c.InjectionRate = rate
		res, err := RunSynthetic(c)
		if err != nil {
			return false, res, err
		}
		return !res.Stalled && res.AvgLatency > 0 && res.AvgLatency <= limit, res, nil
	}
	lo, hi := 0.005, 1.0
	var last Result
	// Exponential probe up, then bisect.
	for hi-lo > 0.005 {
		mid := (lo + hi) / 2
		good, res, err := ok(mid)
		if err != nil {
			return 0, Result{}, err
		}
		if good {
			lo = mid
			last = res
		} else {
			hi = mid
		}
	}
	return lo, last, nil
}

// AppResult summarizes one application run (Figs. 14-15).
type AppResult struct {
	App        string
	Scheme     Scheme
	Runtime    int64 // cycles to complete the transaction target
	AvgLatency float64
	MaxLatency int64
	P99Latency int64
	Completed  int64
	Stalled    bool

	// ClassAvgLatency holds per-message-class mean latencies (indexed
	// by coherence class: request, forward, response, ack, writeback,
	// wb-ack).
	ClassAvgLatency []float64
}

// RunApplication drives a coherence workload to its transaction target
// (or maxCycles) and reports runtime and packet-latency statistics.
func RunApplication(cfg Config, app string, txns, maxCycles int64) (AppResult, error) {
	s, err := NewAppSim(cfg, app, txns)
	if err != nil {
		return AppResult{}, err
	}
	for !s.App.Done() && s.Cycle() < maxCycles {
		s.Step()
	}
	c := s.Collector()
	perClass := make([]float64, len(c.ClassLatency))
	for i := range perClass {
		perClass[i] = c.ClassAvgLatency(i)
	}
	return AppResult{
		App:             app,
		Scheme:          cfg.Scheme,
		Runtime:         s.Cycle(),
		AvgLatency:      c.AvgLatency(),
		MaxLatency:      c.MaxLatency(),
		P99Latency:      c.Latency.Percentile(99),
		Completed:       s.App.Stats.Completed,
		Stalled:         s.Stalled(5000),
		ClassAvgLatency: perClass,
	}, nil
}

// AreaBreakdown re-exports the analytic router area model (Fig. 7).
type AreaBreakdown = area.Breakdown

// AreaReport sizes each scheme's minimum-buffer router configuration
// (Fig. 7) with 128-bit links.
func AreaReport() []AreaBreakdown {
	var out []AreaBreakdown
	for _, s := range area.Fig7Schemes() {
		out = append(out, area.Router(area.SchemeConfig(s, 128)))
	}
	return out
}
