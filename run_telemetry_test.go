package seec_test

import (
	"path/filepath"
	"reflect"
	"testing"

	"seec"
)

// collectRunEvents runs cfg with a Telemetry hook that records every
// run event in order.
func collectRunEvents(t *testing.T, cfg seec.Config) ([]seec.RunEvent, seec.Result) {
	t.Helper()
	var evs []seec.RunEvent
	cfg.Telemetry = func(*seec.Sim) func(seec.RunEvent) {
		return func(e seec.RunEvent) { evs = append(evs, e) }
	}
	res, err := seec.RunSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return evs, res
}

func smallTelemetryConfig() seec.Config {
	cfg := seec.DefaultConfig()
	cfg.Rows, cfg.Cols = 4, 4
	cfg.InjectionRate = 0.10
	cfg.Warmup = 1000
	cfg.SimCycles = 9000 // total 10000: heartbeats at 2048..8192
	return cfg
}

// TestRunTelemetryHeartbeats pins the run-loop event stream: ordered
// monotonic heartbeats with the planned total and a live in-flight
// count, terminated by exactly one RunDone — and identical results with
// telemetry on and off (the observes-only contract).
func TestRunTelemetryHeartbeats(t *testing.T) {
	cfg := smallTelemetryConfig()
	plain, err := seec.RunSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	evs, res := collectRunEvents(t, cfg)
	scrub := res
	scrub.Config.Telemetry = nil // Result.Config carries the hook pointer
	if !reflect.DeepEqual(plain, scrub) {
		t.Errorf("telemetry perturbed the run:\nplain: %+v\nwith:  %+v", plain, scrub)
	}
	var beats []seec.RunEvent
	for _, e := range evs {
		if e.Kind == seec.RunHeartbeat {
			beats = append(beats, e)
		}
	}
	// 10000 cycles at the default 2048 period: beats at 2048, 4096,
	// 6144, 8192.
	if len(beats) != 4 {
		t.Fatalf("heartbeats = %d, want 4: %+v", len(beats), beats)
	}
	for i, b := range beats {
		if b.Total != 10000 {
			t.Errorf("heartbeat %d Total = %d, want 10000", i, b.Total)
		}
		if i > 0 && b.Cycle <= beats[i-1].Cycle {
			t.Errorf("heartbeat cycles not increasing: %+v", beats)
		}
	}
	last := evs[len(evs)-1]
	if last.Kind != seec.RunDone || last.Cycle != 10000 {
		t.Fatalf("last event = %+v, want RunDone at cycle 10000", last)
	}
	dones := 0
	for _, e := range evs {
		if e.Kind == seec.RunDone {
			dones++
		}
	}
	if dones != 1 {
		t.Fatalf("RunDone emitted %d times", dones)
	}
}

// TestRunTelemetryHeartbeatEvery: Config.HeartbeatEvery overrides the
// period (quantized up to the loop's 1024-cycle chunks).
func TestRunTelemetryHeartbeatEvery(t *testing.T) {
	cfg := smallTelemetryConfig()
	cfg.HeartbeatEvery = 1024
	evs, _ := collectRunEvents(t, cfg)
	beats := 0
	for _, e := range evs {
		if e.Kind == seec.RunHeartbeat {
			beats++
		}
	}
	// Beats at 1024..9216 (the final chunk ends the run before 10240).
	if beats != 9 {
		t.Fatalf("heartbeats = %d, want 9", beats)
	}
}

// TestRunTelemetryCheckpointEvents: periodic and final saves emit
// RunCheckpointSave; resuming emits RunCheckpointRestore first.
func TestRunTelemetryCheckpointEvents(t *testing.T) {
	cfg := smallTelemetryConfig()
	path := filepath.Join(t.TempDir(), "ckpt.bin")
	cfg.CheckpointPath = path
	cfg.CheckpointEvery = 4096
	evs, _ := collectRunEvents(t, cfg)
	var saves []int64
	for _, e := range evs {
		if e.Kind == seec.RunCheckpointSave {
			saves = append(saves, e.Cycle)
		}
	}
	// Periodic saves at 4096 and 8192, final save at 10000.
	if len(saves) != 3 || saves[len(saves)-1] != 10000 {
		t.Fatalf("checkpoint saves = %v, want [4096 8192 10000]", saves)
	}

	cfg.ResumePath = path
	evs, _ = collectRunEvents(t, cfg)
	if len(evs) == 0 || evs[0].Kind != seec.RunCheckpointRestore || evs[0].Cycle != 10000 {
		t.Fatalf("first event after resume = %+v, want RunCheckpointRestore at 10000", evs)
	}
	if last := evs[len(evs)-1]; last.Kind != seec.RunDone {
		t.Fatalf("last event after resume = %+v, want RunDone", last)
	}
}

// TestRunTelemetryCIStop: a reachable CI target emits RunCIStop with
// the batch count, before RunDone, at the reported StopCycle.
func TestRunTelemetryCIStop(t *testing.T) {
	cfg := smallTelemetryConfig()
	cfg.Warmup = 200
	cfg.SimCycles = 15000
	cfg.StopCI = 0.5
	evs, res := collectRunEvents(t, cfg)
	var stop *seec.RunEvent
	for i, e := range evs {
		if e.Kind == seec.RunCIStop {
			if stop != nil {
				t.Fatal("RunCIStop emitted twice")
			}
			stop = &evs[i]
		}
	}
	if stop == nil {
		t.Fatalf("no RunCIStop in %+v", evs)
	}
	if stop.Arg <= 0 {
		t.Errorf("RunCIStop batches = %d, want > 0", stop.Arg)
	}
	if res.StopCycle == 0 || stop.Cycle != res.StopCycle {
		t.Errorf("RunCIStop cycle %d != StopCycle %d", stop.Cycle, res.StopCycle)
	}
	if last := evs[len(evs)-1]; last.Kind != seec.RunDone || last.Cycle != res.StopCycle {
		t.Errorf("last event = %+v, want RunDone at %d", last, res.StopCycle)
	}
}

// TestRunTelemetryApplication: the application run loop emits
// heartbeats and a final RunDone too.
func TestRunTelemetryApplication(t *testing.T) {
	cfg := seec.DefaultConfig()
	cfg.Rows, cfg.Cols = 4, 4
	var evs []seec.RunEvent
	cfg.Telemetry = func(*seec.Sim) func(seec.RunEvent) {
		return func(e seec.RunEvent) { evs = append(evs, e) }
	}
	if _, err := seec.RunApplication(cfg, "stress", 3000, 2_000_000); err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("no run events from application run")
	}
	if last := evs[len(evs)-1]; last.Kind != seec.RunDone {
		t.Fatalf("last event = %+v, want RunDone", last)
	}
	beats := 0
	for _, e := range evs {
		if e.Kind == seec.RunHeartbeat {
			beats++
		}
		if e.Kind == seec.RunHeartbeat && e.Total != 2_000_000 {
			t.Fatalf("app heartbeat Total = %d, want 2000000", e.Total)
		}
	}
	if beats == 0 {
		t.Fatal("no heartbeats from application run")
	}
}

// TestTelemetryOptionsStart covers the CLI-facing aggregation: a
// started session wires Config, assigns distinct run ids, and serves
// /status.
func TestTelemetryOptionsStart(t *testing.T) {
	var o seec.TelemetryOptions
	if o.Enabled() {
		t.Fatal("zero TelemetryOptions reports enabled")
	}
	tel, err := o.Start()
	if err != nil || tel != nil {
		t.Fatalf("disabled Start = %v, %v; want nil, nil", tel, err)
	}
	// Nil-receiver methods must be safe.
	if tel.Addr() != "" || tel.ProgressLine() != "" || tel.Hook() != nil || tel.Close() != nil {
		t.Fatal("nil *Telemetry methods not no-ops")
	}

	o.StatusAddr = "127.0.0.1:0"
	tel, err = o.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer tel.Close()
	if tel.Addr() == "" {
		t.Fatal("no bound address")
	}
	cfg := smallTelemetryConfig()
	tel.Attach(&cfg)
	if cfg.Telemetry == nil {
		t.Fatal("Attach did not set Config.Telemetry")
	}
	if _, err := seec.RunSynthetic(cfg); err != nil {
		t.Fatal(err)
	}
	snap := tel.Agg.Snapshot()
	if snap.Events == 0 {
		t.Fatal("no events reached the aggregator")
	}
	if snap.Runs != nil {
		t.Fatalf("finished run still live in aggregator: %+v", snap.Runs)
	}
}
