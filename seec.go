// Package seec is a from-scratch Go reproduction of "SEEC: Stochastic
// Escape Express Channel" (Parasar, Enright Jerger, Gratz, San Miguel,
// Krishna; SC '21): a cycle-accurate mesh NoC simulator, the SEEC and
// mSEEC mechanisms (seeker tokens + Free-Flow bufferless express
// traversal), and the full set of baseline deadlock-freedom and
// flow-control schemes the paper evaluates against — turn models,
// escape VCs, TFC, CHIPPER/MinBD deflection, SPIN, SWAP and DRAIN —
// plus synthetic and coherence-protocol workloads, link-energy and
// router-area models, and a harness that regenerates every figure and
// table in the paper's evaluation.
//
// The quickest way in:
//
//	cfg := seec.DefaultConfig()
//	cfg.Scheme = seec.SchemeSEEC
//	cfg.Pattern = "uniform_random"
//	cfg.InjectionRate = 0.10
//	res, err := seec.RunSynthetic(cfg)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record.
package seec

import (
	"fmt"

	"seec/internal/coherence"
	"seec/internal/deflect"
	"seec/internal/energy"
	"seec/internal/express"
	"seec/internal/fault"
	"seec/internal/noc"
	"seec/internal/rng"
	"seec/internal/schemes/drain"
	"seec/internal/schemes/escape"
	"seec/internal/schemes/spin"
	"seec/internal/schemes/swap"
	"seec/internal/schemes/tfc"
	"seec/internal/stats"
	"seec/internal/traffic"
)

// Scheme identifies a deadlock-freedom / flow-control mechanism.
type Scheme string

// The schemes of Table 4, plus the unprotected baseline used to
// demonstrate that deadlocks are real.
const (
	// SchemeNone is plain credit flow control with no protection:
	// deadlock-free only under a deadlock-free routing algorithm.
	SchemeNone Scheme = "none"
	// SchemeXY is dimension-ordered routing (proactive, Table 4 "Turn
	// Models").
	SchemeXY Scheme = "xy"
	// SchemeWestFirst is the west-first turn model (proactive).
	SchemeWestFirst Scheme = "west-first"
	// SchemeTFC is Token Flow Control over west-first (proactive).
	SchemeTFC Scheme = "tfc"
	// SchemeEscape is Duato escape VCs: adaptive random in normal VCs,
	// west-first in the per-class escape VC (proactive).
	SchemeEscape Scheme = "escape"
	// SchemeCHIPPER is bufferless deflection routing (proactive).
	SchemeCHIPPER Scheme = "chipper"
	// SchemeMinBD is minimally-buffered deflection (proactive).
	SchemeMinBD Scheme = "minbd"
	// SchemeSPIN is reactive detection + synchronized spins.
	SchemeSPIN Scheme = "spin"
	// SchemeSWAP is subactive pair-wise packet swapping.
	SchemeSWAP Scheme = "swap"
	// SchemeDRAIN is subactive periodic ring drains.
	SchemeDRAIN Scheme = "drain"
	// SchemeSEEC is the paper's contribution: seekers + Free-Flow.
	SchemeSEEC Scheme = "seec"
	// SchemeMSEEC is multi-SEEC: k simultaneous seekers (§3.8).
	SchemeMSEEC Scheme = "mseec"
)

// AllSchemes lists every supported scheme.
func AllSchemes() []Scheme {
	return []Scheme{SchemeXY, SchemeWestFirst, SchemeTFC, SchemeEscape,
		SchemeCHIPPER, SchemeMinBD, SchemeSPIN, SchemeSWAP, SchemeDRAIN,
		SchemeSEEC, SchemeMSEEC}
}

// Routing identifies the routing algorithm for regular VCs. An empty
// value selects each scheme's paper default (Table 4): XY for
// SchemeXY, west-first for west-first/TFC, fully-adaptive minimal
// random for escape/SPIN/SWAP/DRAIN/SEEC/mSEEC.
type Routing string

// Routing algorithm names.
const (
	RoutingDefault   Routing = ""
	RoutingXY        Routing = "xy"
	RoutingYX        Routing = "yx"
	RoutingWestFirst Routing = "west-first"
	RoutingOblivious Routing = "oblivious" // minimal oblivious random (deadlock-prone alone)
	RoutingAdaptive  Routing = "adaptive"  // minimal adaptive random (deadlock-prone alone)
)

// Config describes one simulation. Zero values mean "paper default".
type Config struct {
	Rows, Cols int
	Scheme     Scheme
	Routing    Routing

	// VCsPerVNet is the number of VCs per virtual network at each
	// input port (Fig. 8 uses 4 for synthetic traffic).
	VCsPerVNet int
	// Classes is the number of protocol message classes (1 for
	// synthetic traffic, 6 for application traffic).
	Classes int
	// VNets is 0 for the scheme's natural choice (1 for SEEC/mSEEC/
	// DRAIN/escape-shared-pool, Classes for partitioned baselines).
	VNets int

	VCDepth          int
	MaxPacketSize    int
	EjectVCsPerClass int
	InjQueueCap      int

	// Wormhole switches the routers from VCT to wormhole buffer
	// management (§3.11): VCDepth may then be smaller than the largest
	// packet. Supported by SEEC/mSEEC and the proactive baselines; the
	// move-based baselines (SPIN, SWAP, DRAIN) require whole packets
	// per buffer and reject this mode.
	Wormhole bool

	Seed   uint64
	Warmup int64

	// Synthetic traffic.
	Pattern       string  // e.g. "uniform_random", "transpose"
	InjectionRate float64 // packets/node/cycle
	SimCycles     int64   // measured cycles (after warmup)

	// NICSearchPeriod is SEEC's N from §3.7 (0 = search every
	// circulation, this library's default; the paper used 1M cycles).
	NICSearchPeriod int64

	// OldestFirst switches SEEC/mSEEC seekers from first-match to
	// oldest-packet selection — the QoS extension §4.3 points at.
	OldestFirst bool

	// Faults is a fault-injection spec string (see internal/fault:
	// "link:0.001,router:2@5000,corrupt:1e-5"). Empty disables the fault
	// layer entirely — results are then byte-identical to a build
	// without it. Supported on credit-flow schemes with synthetic
	// traffic; deflection schemes and coherence traffic reject it.
	Faults string

	// Shards selects deterministic intra-run parallelism: the mesh is
	// partitioned into Shards contiguous spatial shards and each cycle
	// runs as phase-barriered parallel stages on a persistent worker
	// pool. Results are byte-identical to serial execution for every
	// scheme, traffic pattern and fault spec (DESIGN.md §8), so this is
	// purely a speed knob. 0 or 1 selects the serial step; values above
	// the node count are clamped. Credit-flow schemes only — deflection
	// schemes reject Shards > 1. Excluded from SweepSeed (identical
	// results need identical seeds), and normalized away by nothing
	// else: Result.Config retains the value that ran.
	Shards int `json:",omitempty"`

	// StopCI enables confidence-interval early stopping for synthetic
	// runs: after warmup, a batch-means estimator (internal/stats)
	// tracks the average packet latency, and the run ends as soon as
	// the 95% CI's relative half-width drops to StopCI (e.g. 0.02 for
	// ±2%) — or at Warmup+SimCycles, whichever comes first. 0 disables
	// the stopper entirely and reproduces the fixed-cycle run
	// byte-for-byte. StopCI changes where a run ends, so it is a
	// semantic field: it participates in JSON (and hence CheckpointHash
	// and run manifests).
	StopCI float64 `json:",omitempty"`

	// CheckpointPath, CheckpointEvery and ResumePath drive the
	// checkpoint machinery in RunSyntheticCtx. A non-empty
	// CheckpointPath makes the run save its full state to that file
	// atomically (write-temp-then-rename) every CheckpointEvery cycles
	// (0 selects DefaultCheckpointEvery) and once more at the end. A
	// non-empty ResumePath makes the run restore from that file before
	// stepping — falling back to a fresh start if the file does not
	// exist, and failing on a corrupt or mismatched one. These are
	// operational knobs, not semantics: resuming an interrupted run
	// yields output byte-identical to the uninterrupted run, so all
	// three are excluded from JSON, CheckpointHash and manifests.
	CheckpointPath  string `json:"-"`
	CheckpointEvery int64  `json:"-"`
	ResumePath      string `json:"-"`

	// Instrument, when non-nil, is called on the freshly built Sim
	// before the first cycle; runner helpers (RunSynthetic,
	// RunApplication) invoke it and call the returned function (if any)
	// after the last cycle. It is how the CLIs attach tracers, metrics
	// and watchdogs to runs that go through the sweep machinery.
	// Instrumentation must only observe — it never changes results.
	// Excluded from JSON (run manifests embed Config) and from
	// SweepSeed, so enabling it cannot perturb seeding.
	Instrument func(*Sim) func() `json:"-"`

	// Telemetry, when non-nil, is called on the freshly built Sim and
	// returns the run-event callback the run loop invokes for
	// heartbeats, checkpoint saves/restores, CI stops, watchdog stall
	// verdicts and run completion (a nil return disables events for
	// that run). It is a factory rather than a plain callback so that
	// each concurrent simulation — saturation search runs many from one
	// Config — gets its own run identity. Like Instrument it only
	// observes: results are byte-identical with it on or off, and it is
	// excluded from JSON, CheckpointHash and SweepSeed.
	Telemetry func(*Sim) func(RunEvent) `json:"-"`

	// HeartbeatEvery is the heartbeat period in cycles for the run-loop
	// telemetry callback (0 selects DefaultHeartbeatEvery). Operational
	// like Telemetry, hence excluded from JSON.
	HeartbeatEvery int64 `json:"-"`
}

// DefaultConfig mirrors Table 4 for synthetic traffic on an 8x8 mesh.
func DefaultConfig() Config {
	return Config{
		Rows: 8, Cols: 8,
		Scheme:           SchemeSEEC,
		VCsPerVNet:       4,
		Classes:          1,
		VCDepth:          5,
		MaxPacketSize:    5,
		EjectVCsPerClass: 4,
		Seed:             1,
		Warmup:           1000,
		Pattern:          "uniform_random",
		InjectionRate:    0.05,
		SimCycles:        20000,
	}
}

// routingKind resolves the Routing string against the scheme default.
func (c *Config) routingKind() (noc.RoutingKind, error) {
	r := c.Routing
	if r == RoutingDefault {
		switch c.Scheme {
		case SchemeXY, SchemeNone:
			r = RoutingXY
		case SchemeWestFirst, SchemeTFC:
			r = RoutingWestFirst
		default:
			r = RoutingAdaptive
		}
	}
	switch r {
	case RoutingXY:
		return noc.RoutingXY, nil
	case RoutingYX:
		return noc.RoutingYX, nil
	case RoutingWestFirst:
		return noc.RoutingWestFirst, nil
	case RoutingOblivious:
		return noc.RoutingObliviousMin, nil
	case RoutingAdaptive:
		return noc.RoutingAdaptiveMin, nil
	}
	return 0, fmt.Errorf("seec: unknown routing %q", r)
}

// nocConfig lowers the public Config to the simulator Config.
func (c *Config) nocConfig() (noc.Config, error) {
	n := noc.DefaultConfig()
	n.Rows, n.Cols = c.Rows, c.Cols
	n.Classes = c.Classes
	n.VCsPerVNet = c.VCsPerVNet
	n.VCDepth = c.VCDepth
	n.MaxPacketSize = c.MaxPacketSize
	n.EjectVCsPerClass = c.EjectVCsPerClass
	n.InjQueueCap = c.InjQueueCap
	n.Seed = c.Seed
	n.Warmup = c.Warmup
	if c.Wormhole {
		n.Buffering = noc.Wormhole
	}
	kind, err := c.routingKind()
	if err != nil {
		return n, err
	}
	n.Routing = kind
	// VNet layout: SEEC, mSEEC and DRAIN run one unified VNet; the
	// escape scheme manages its own restrictions inside a shared pool;
	// partitioned baselines get one VNet per class (Table 4).
	n.VNets = c.VNets
	if n.VNets == 0 {
		switch c.Scheme {
		case SchemeSEEC, SchemeMSEEC, SchemeDRAIN, SchemeEscape:
			n.VNets = 1
		default:
			n.VNets = c.Classes
		}
	}
	return n, n.Validate()
}

// Sim is one constructed simulation: either a credit-flow network (most
// schemes) or a deflection network (CHIPPER/MinBD), plus its traffic.
type Sim struct {
	Cfg Config

	Net  *noc.Network     // nil for deflection schemes
	Defl *deflect.Network // nil for credit-flow schemes

	Synthetic *traffic.Synthetic // non-nil for synthetic runs
	App       *coherence.Engine  // non-nil for application runs

	SEEC  *express.SEEC
	MSEEC *express.MSEEC
	SPIN  *spin.SPIN
	SWAP  *swap.SWAP
	DRAIN *drain.DRAIN

	// Faults is the installed fault injector (nil when Config.Faults is
	// empty).
	Faults *fault.Injector

	// ci is the latency confidence interval at run end, recorded by the
	// run loop when Config.StopCI is set so instrumentation manifests
	// can report the precision actually achieved.
	ci *stats.CI
}

// Step advances one cycle.
func (s *Sim) Step() {
	if s.Net != nil {
		s.Net.Step()
	} else {
		s.Defl.Step()
	}
}

// Run advances n cycles. Credit-flow networks go through noc.Run,
// which fast-forwards provably idle stretches (e.g. a drained network
// waiting out a retransmission timeout); the skips are exact, so
// results match stepping n times.
func (s *Sim) Run(n int64) {
	if s.Net != nil {
		s.Net.Run(n)
		return
	}
	for i := int64(0); i < n; i++ {
		s.Defl.Step()
	}
}

// Close releases the sharded worker pool, if any. Optional — a GC
// finalizer eventually reclaims forgotten pools — but deterministic
// cleanup keeps goroutine counts flat in sweeps that build thousands
// of Sims. Safe to call more than once; the Sim remains usable (the
// next sharded Step starts a fresh pool).
func (s *Sim) Close() {
	if s.Net != nil {
		s.Net.StopWorkers()
	}
}

// Cycle returns the current simulation time.
func (s *Sim) Cycle() int64 {
	if s.Net != nil {
		return s.Net.Cycle
	}
	return s.Defl.Cycle
}

// Collector returns the packet-statistics collector.
func (s *Sim) Collector() *stats.Collector {
	if s.Net != nil {
		return s.Net.Collector
	}
	return s.Defl.Collector
}

// Energy returns the activity-based energy meter.
func (s *Sim) Energy() *energy.Meter {
	if s.Net != nil {
		return s.Net.Energy
	}
	return s.Defl.Energy
}

// Drained reports whether no packets remain in the system.
func (s *Sim) Drained() bool {
	if s.Net != nil {
		return s.Net.Drained()
	}
	return s.Defl.Drained()
}

// Stalled reports a liveness failure: packets present but nothing has
// moved for window cycles.
func (s *Sim) Stalled(window int64) bool {
	if s.Net != nil {
		return s.Net.Stalled(window)
	}
	return s.Defl.Stalled(window)
}

// Nodes returns the endpoint count.
func (s *Sim) Nodes() int { return s.Cfg.Rows * s.Cfg.Cols }

// InFlightPackets returns the number of packets currently in the
// network (injected but not yet consumed). Reported in telemetry
// heartbeats.
func (s *Sim) InFlightPackets() int {
	if s.Net != nil {
		return s.Net.InFlight
	}
	return s.Defl.InFlight
}

// FFUpgrades returns how many packets were promoted to Free-Flow (0
// for non-SEEC schemes).
func (s *Sim) FFUpgrades() int64 {
	switch {
	case s.SEEC != nil:
		return s.SEEC.Stats.Upgrades + s.SEEC.Stats.QueueUpgrades
	case s.MSEEC != nil:
		return s.MSEEC.Stats.Upgrades + s.MSEEC.Stats.QueueUpgrades
	}
	return 0
}

// NewSim builds a simulation with synthetic traffic per cfg.
func NewSim(cfg Config) (*Sim, error) {
	pat, err := traffic.ParsePattern(cfg.Pattern)
	if err != nil {
		return nil, err
	}
	src := traffic.NewSynthetic(cfg.Rows, cfg.Cols, pat, cfg.InjectionRate, cfg.Seed)
	s, err := build(cfg, src)
	if err != nil {
		return nil, err
	}
	// Synthetic sinks never retain delivered packets, so consumed Packet
	// objects can be recycled into new injections. Closed-loop traffic
	// (NewAppSim) keeps recycling off: the coherence engine tracks
	// transactions past delivery.
	if s.Net != nil {
		s.Net.SetPacketRecycling(true)
	}
	s.Synthetic = src
	return s, nil
}

// NewAppSim builds a simulation driven by a coherence application
// profile. Deflection schemes are not supported for application
// traffic (as in the paper, which evaluates MinBD on synthetic traffic
// only).
func NewAppSim(cfg Config, app string, txns int64) (*Sim, error) {
	if cfg.Scheme == SchemeCHIPPER || cfg.Scheme == SchemeMinBD {
		return nil, fmt.Errorf("seec: deflection schemes run synthetic traffic only")
	}
	if cfg.Faults != "" {
		// Retransmitted packets carry no Tag, and the coherence engine
		// retains packet pointers past delivery — both incompatible with
		// the discard/retransmit protocol.
		return nil, fmt.Errorf("seec: fault injection supports synthetic traffic only")
	}
	prof, err := coherence.ByName(app)
	if err != nil {
		return nil, err
	}
	cfg.Classes = coherence.NumClasses
	if cfg.InjQueueCap == 0 {
		cfg.InjQueueCap = 4
	}
	ncfg, err := cfg.nocConfig()
	if err != nil {
		return nil, err
	}
	eng := coherence.NewEngine(&ncfg, prof, cfg.Seed)
	eng.TargetTxns = txns
	s, err := build(cfg, eng)
	if err != nil {
		return nil, err
	}
	eng.Bind(s.Net)
	s.App = eng
	return s, nil
}

// build assembles the network for cfg around the given traffic source.
func build(cfg Config, src noc.TrafficSource) (*Sim, error) {
	ncfg, err := cfg.nocConfig()
	if err != nil {
		return nil, err
	}
	if ncfg.Buffering == noc.Wormhole {
		switch cfg.Scheme {
		case SchemeSPIN, SchemeSWAP, SchemeDRAIN:
			return nil, fmt.Errorf("seec: %s moves whole packets between buffers and does not support wormhole mode (§3.11)", cfg.Scheme)
		}
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("seec: negative shard count %d", cfg.Shards)
	}
	var spec fault.Spec
	if cfg.Faults != "" {
		spec, err = fault.ParseSpec(cfg.Faults)
		if err != nil {
			return nil, err
		}
	}
	s := &Sim{Cfg: cfg}
	switch cfg.Scheme {
	case SchemeCHIPPER, SchemeMinBD:
		if cfg.Shards > 1 {
			return nil, fmt.Errorf("seec: sharded execution supports credit-flow schemes only, not %s", cfg.Scheme)
		}
		if cfg.Faults != "" {
			// Deflection networks have no credit-flow NICs to carry the
			// ACK/retransmission protocol.
			return nil, fmt.Errorf("seec: fault injection is not supported on deflection scheme %s", cfg.Scheme)
		}
		v := deflect.CHIPPER
		if cfg.Scheme == SchemeMinBD {
			v = deflect.MinBD
		}
		d, err := deflect.New(ncfg, v, src)
		if err != nil {
			return nil, err
		}
		s.Defl = d
		return s, nil
	}
	opts := []noc.Option{noc.WithTraffic(src)}
	switch cfg.Scheme {
	case SchemeNone, SchemeXY, SchemeWestFirst:
		// Plain credit flow; routing already set.
	case SchemeTFC:
		opts = append(opts, noc.WithVA(tfc.Policy{}))
	case SchemeEscape:
		if ncfg.TotalVCs() <= ncfg.Classes {
			return nil, fmt.Errorf("seec: escape VC needs more than %d VCs (one escape per class plus a normal pool)", ncfg.Classes)
		}
		pol := escape.New(ncfg.Classes)
		if ncfg.Routing == noc.RoutingObliviousMin {
			pol.Adaptive = noc.RoutingObliviousMin
		}
		opts = append(opts, noc.WithVA(pol))
	case SchemeSPIN:
		s.SPIN = spin.New(spin.Options{})
		opts = append(opts, noc.WithScheme(s.SPIN))
	case SchemeSWAP:
		s.SWAP = swap.New(swap.Options{})
		opts = append(opts, noc.WithScheme(s.SWAP))
	case SchemeDRAIN:
		s.DRAIN = drain.New(drain.Options{})
		opts = append(opts, noc.WithScheme(s.DRAIN))
	case SchemeSEEC:
		s.SEEC = express.NewSEEC(express.Options{NICSearchPeriod: cfg.NICSearchPeriod, OldestFirst: cfg.OldestFirst})
		opts = append(opts, noc.WithScheme(s.SEEC))
	case SchemeMSEEC:
		s.MSEEC = express.NewMSEEC(express.Options{NICSearchPeriod: cfg.NICSearchPeriod, OldestFirst: cfg.OldestFirst})
		opts = append(opts, noc.WithScheme(s.MSEEC))
	default:
		return nil, fmt.Errorf("seec: unknown scheme %q", cfg.Scheme)
	}
	n, err := noc.New(ncfg, opts...)
	if err != nil {
		return nil, err
	}
	s.Net = n
	if cfg.Shards > 1 {
		n.EnableSharding(cfg.Shards)
	}
	if cfg.Faults != "" {
		// The injector's private stream is derived from the run seed and
		// the spec's own seed field, so fault draws are independent of —
		// and never perturb — the simulation's RNG sequence.
		fseed := rng.NewSeedHash(cfg.Seed).String("fault").Uint64(spec.Seed).Seed()
		s.Faults = fault.NewInjector(spec, fseed)
		n.SetFaults(s.Faults)
	}
	return s, nil
}
