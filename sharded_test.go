package seec_test

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"seec"
)

// shardableSchemes is every scheme that runs on the credit-flow
// network and therefore supports sharded execution: SchemeNone plus
// the creditFlowSchemes list (integration_test.go). CHIPPER and MinBD
// run on the deflection core, which has no sharded path (build rejects
// Shards > 1 for them).
func shardableSchemes() []seec.Scheme {
	return append([]seec.Scheme{seec.SchemeNone}, creditFlowSchemes()...)
}

// runCapturing runs one synthetic configuration and returns its Result
// plus the finished Sim, captured through the Instrument hook so the
// test can compare internal end state (Collector, snapshot) that the
// Result summary alone would mask.
func runCapturing(t *testing.T, cfg seec.Config) (seec.Result, *seec.Sim) {
	t.Helper()
	var sim *seec.Sim
	cfg.Instrument = func(s *seec.Sim) func() {
		sim = s
		return nil
	}
	res, err := seec.RunSynthetic(cfg)
	if err != nil {
		t.Fatalf("scheme=%s pattern=%s shards=%d: %v", cfg.Scheme, cfg.Pattern, cfg.Shards, err)
	}
	if sim == nil || sim.Net == nil {
		t.Fatalf("scheme=%s: instrument hook did not capture the network", cfg.Scheme)
	}
	return res, sim
}

// requireIdentical compares a serial and a sharded run of the same
// configuration at every level the simulator exposes: the Result
// summary, the full statistics Collector, and the byte-exact network
// snapshot.
func requireIdentical(t *testing.T, cfg seec.Config, shards int) {
	t.Helper()
	serialCfg := cfg
	serialCfg.Shards = 0
	shardedCfg := cfg
	shardedCfg.Shards = shards

	serialRes, serialSim := runCapturing(t, serialCfg)
	shardedRes, shardedSim := runCapturing(t, shardedCfg)

	// Shards is a speed knob, not a result parameter, and the Instrument
	// hooks are distinct closures by construction; both are scrubbed
	// from the echoed Config before comparison.
	serialRes.Config.Shards, shardedRes.Config.Shards = 0, 0
	serialRes.Config.Instrument, shardedRes.Config.Instrument = nil, nil
	if !reflect.DeepEqual(serialRes, shardedRes) {
		t.Errorf("shards=%d: Result differs\nserial:  %+v\nsharded: %+v", shards, serialRes, shardedRes)
	}
	if !reflect.DeepEqual(serialSim.Collector(), shardedSim.Collector()) {
		t.Errorf("shards=%d: Collector state differs", shards)
	}
	var serialSnap, shardedSnap bytes.Buffer
	serialSim.Net.WriteSnapshot(&serialSnap)
	shardedSim.Net.WriteSnapshot(&shardedSnap)
	if !bytes.Equal(serialSnap.Bytes(), shardedSnap.Bytes()) {
		t.Errorf("shards=%d: final network snapshot differs\nserial:\n%s\nsharded:\n%s",
			shards, serialSnap.Bytes(), shardedSnap.Bytes())
	}
}

// TestShardedIdentity is the bit-identity gate for the tentpole: every
// credit-flow scheme, across traffic patterns, with and without a
// fault spec, must produce byte-identical output at any shard count.
// Shard counts cycle through {2, 4, 8} (including counts that divide
// 64 unevenly happens in FuzzShardedIdentity's 4x4 corpus).
func TestShardedIdentity(t *testing.T) {
	patterns := []string{"uniform_random", "transpose", "bit_complement"}
	shardCounts := []int{2, 4, 8}
	if testing.Short() {
		patterns = patterns[:1]
	}
	i := 0
	for _, scheme := range shardableSchemes() {
		for _, pattern := range patterns {
			for _, faults := range []string{"", "link:0.001,router:1@2000,corrupt:1e-4"} {
				shards := shardCounts[i%len(shardCounts)]
				i++
				name := fmt.Sprintf("%s/%s/k%d", scheme, pattern, shards)
				if faults != "" {
					name += "/faults"
				}
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					cfg := seec.DefaultConfig()
					cfg.Scheme = scheme
					cfg.Pattern = pattern
					cfg.InjectionRate = 0.10
					cfg.SimCycles = 3000
					cfg.Warmup = 500
					cfg.Faults = faults
					requireIdentical(t, cfg, shards)
				})
			}
		}
	}
}

// TestShardedStepRace exercises every stage composition of the sharded
// step long enough for the race detector to observe cross-shard
// conflicts: the fully parallel path (XY: parallel VA, injection,
// generation, consumption), the serial-VA path (SEEC's escape policy),
// and the faulted path (serial data delivery and injection, parallel
// credits and routers). Run under `go test -race` — ci.sh has a
// dedicated pass.
func TestShardedStepRace(t *testing.T) {
	cases := []struct {
		name   string
		scheme seec.Scheme
		faults string
	}{
		{"parallel_va", seec.SchemeXY, ""},
		{"serial_va", seec.SchemeSEEC, ""},
		{"faulted", seec.SchemeXY, "link:0.002,drop:0.001"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := seec.DefaultConfig()
			cfg.Scheme = tc.scheme
			cfg.InjectionRate = 0.20
			cfg.SimCycles = 1500
			cfg.Warmup = 200
			cfg.Faults = tc.faults
			cfg.Shards = 4
			if _, err := seec.RunSynthetic(cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// FuzzShardedIdentity fuzzes the shard count (and the scheme, pattern
// and rate around it) against serial output on a 4x4 mesh — small
// enough that shard counts clamp and divide unevenly, which is where
// partition bookkeeping bugs live.
func FuzzShardedIdentity(f *testing.F) {
	f.Add(uint8(1), uint8(0), uint8(51), uint8(3), false)
	f.Add(uint8(8), uint8(1), uint8(102), uint8(16), true)
	f.Add(uint8(3), uint8(2), uint8(25), uint8(200), false)
	patterns := []string{"uniform_random", "transpose", "bit_complement", "tornado", "shuffle"}
	f.Fuzz(func(t *testing.T, schemeB, patternB, rateB, shardB uint8, faulted bool) {
		cfg := seec.DefaultConfig()
		cfg.Rows, cfg.Cols = 4, 4
		schemes := shardableSchemes()
		cfg.Scheme = schemes[int(schemeB)%len(schemes)]
		cfg.Pattern = patterns[int(patternB)%len(patterns)]
		cfg.InjectionRate = float64(rateB%128) / 512 // [0, 0.25)
		cfg.SimCycles = 400
		cfg.Warmup = 100
		if faulted {
			cfg.Faults = "link:0.002,corrupt:1e-3,drop:1e-3"
		}
		shards := int(shardB)
		if shards < 2 {
			shards = 2
		}
		requireIdentical(t, cfg, shards)
	})
}
