package seec_test

import (
	"fmt"
	"testing"

	"seec"
	"seec/internal/rng"
)

// TestRandomizedStress is the repository's chaos harness: random
// scheme, mesh shape, VC count, pattern, load and seed combinations,
// each audited for bookkeeping consistency and liveness-appropriate
// behavior. Any panic (flow-control violation, FF collision, buffer
// overflow) or invariant breach fails the run with its recipe printed
// for reproduction.
func TestRandomizedStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress harness is slow")
	}
	r := rng.New(0xC0FFEE)
	schemes := seec.AllSchemes()
	patterns := []string{"uniform_random", "bit_rotation", "shuffle",
		"transpose", "bit_complement", "tornado", "neighbor", "hotspot"}
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		cfg := seec.DefaultConfig()
		dims := [][2]int{{4, 4}, {8, 8}, {4, 8}, {2, 6}, {6, 2}}[r.Intn(5)]
		cfg.Rows, cfg.Cols = dims[0], dims[1]
		cfg.Scheme = schemes[r.Intn(len(schemes))]
		cfg.VCsPerVNet = 1 + r.Intn(4)
		if cfg.Scheme == seec.SchemeEscape && cfg.VCsPerVNet < 2 {
			cfg.VCsPerVNet = 2
		}
		cfg.EjectVCsPerClass = 1 + r.Intn(4)
		cfg.Pattern = patterns[r.Intn(len(patterns))]
		cfg.InjectionRate = 0.02 + r.Float64()*0.38
		cfg.Seed = r.Uint64()
		cfg.SimCycles = 3000
		recipe := fmt.Sprintf("trial %d: %s %dx%d vcs=%d ej=%d %s rate=%.3f seed=%d",
			trial, cfg.Scheme, cfg.Rows, cfg.Cols, cfg.VCsPerVNet,
			cfg.EjectVCsPerClass, cfg.Pattern, cfg.InjectionRate, cfg.Seed)
		sim, err := seec.NewSim(cfg)
		if err != nil {
			// Only structural rejections are acceptable (e.g. DRAIN has
			// no Hamiltonian cycle on odd x odd meshes — none here).
			t.Fatalf("%s: %v", recipe, err)
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("%s: panic: %v", recipe, p)
				}
			}()
			// Run in chunks, auditing bookkeeping AND active-set
			// tracking mid-flight: a quiescence bug (a skipped router
			// that still held work) shows up here long before it would
			// distort end-of-run statistics.
			const chunk = 250
			for done := int64(0); done < cfg.Warmup+cfg.SimCycles; done += chunk {
				sim.Run(chunk)
				if sim.Net != nil {
					if err := sim.Net.CheckInvariants(); err != nil {
						t.Fatalf("%s: cycle %d: %v", recipe, done+chunk, err)
					}
				}
			}
		}()
		// Turn-model and express schemes must never misroute.
		switch cfg.Scheme {
		case seec.SchemeXY, seec.SchemeWestFirst, seec.SchemeTFC,
			seec.SchemeEscape, seec.SchemeSEEC, seec.SchemeMSEEC, seec.SchemeSPIN:
			if m := sim.Collector().MisrouteHops; m != 0 {
				t.Fatalf("%s: %d misroute hops from a minimal scheme", recipe, m)
			}
		}
	}
}

// TestMidFlightAuditAllSchemes drives every scheme under identical
// moderate load and audits flow-control bookkeeping plus the active-set
// invariant (CheckActiveSets, via CheckInvariants) every 100 cycles.
// This is the direct regression net for the occupancy-proportional
// scheduler: each scheme exercises a different out-of-pipeline way of
// moving packets (FF worms, spins, swaps, drain rotations, deflection),
// and all of them must keep the activity tracking exact mid-cycle-
// stream, not just at the end of a run.
func TestMidFlightAuditAllSchemes(t *testing.T) {
	for _, scheme := range seec.AllSchemes() {
		scheme := scheme
		t.Run(string(scheme), func(t *testing.T) {
			cfg := seec.DefaultConfig()
			cfg.Rows, cfg.Cols = 4, 4
			cfg.Scheme = scheme
			cfg.Pattern = "uniform_random"
			cfg.InjectionRate = 0.15
			cfg.Seed = 7
			sim, err := seec.NewSim(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if sim.Net == nil {
				t.Skip("deflection network has no credit/active-set audit")
			}
			for cycle := 0; cycle < 1500; cycle += 100 {
				sim.Run(100)
				if err := sim.Net.CheckInvariants(); err != nil {
					t.Fatalf("cycle %d: %v", cycle+100, err)
				}
			}
		})
	}
}
