package seec

import (
	"fmt"
	"os"
	"sync/atomic"

	"seec/internal/telemetry"
)

// DefaultHeartbeatEvery is the run-loop telemetry heartbeat period in
// cycles when Config.HeartbeatEvery is zero. Heartbeats piggyback on
// the run loop's existing chunking, so the period is quantized to the
// 1024-cycle chunk size; the hot per-cycle Step path is untouched.
const DefaultHeartbeatEvery = 2048

// RunEventKind identifies one run-level lifecycle event emitted by the
// run loops (RunSyntheticCtx, RunApplicationCtx) to the callback
// installed via Config.Telemetry.
type RunEventKind uint8

const (
	// RunHeartbeat: periodic progress (Cycle, Total = planned end
	// cycle, InFlight = packets in flight).
	RunHeartbeat RunEventKind = iota
	// RunDone: the run loop finished (Cycle = final cycle).
	RunDone
	// RunCheckpointSave: a periodic or final checkpoint was written.
	RunCheckpointSave
	// RunCheckpointRestore: the run restored from a checkpoint instead
	// of starting fresh (Cycle = the restored cycle).
	RunCheckpointRestore
	// RunCIStop: CI early stopping ended the run before its cycle
	// budget (Cycle = stop cycle, Arg = CI batches observed).
	RunCIStop
	// RunWatchdogStall: the stall watchdog issued a no-ejection-progress
	// verdict (Arg = cycles since the last ejection).
	RunWatchdogStall
)

// RunEvent is one run-level lifecycle occurrence. Passed by value and
// allocation-free, matching the observability layer's zero-overhead
// discipline: with Config.Telemetry nil the run loop pays one nil check
// per chunk and nothing else.
type RunEvent struct {
	Kind     RunEventKind
	Cycle    int64 // current simulation cycle
	Total    int64 // planned end cycle
	InFlight int64 // heartbeat: packets in flight
	Arg      int64 // kind-specific (CI batches, stall cycles)
}

// TelemetryOptions configures live sweep telemetry for a CLI run: an
// HTTP status server, a JSONL event log, or both. The zero value is
// fully disabled.
type TelemetryOptions struct {
	// StatusAddr, when non-empty, is the listen address for the HTTP
	// server exposing /status (JSON snapshot), /metrics (Prometheus
	// text format) and /debug/pprof. ":0" picks a free port.
	StatusAddr string
	// EventsPath, when non-empty, appends every telemetry event as one
	// JSON object per line to this file.
	EventsPath string
	// HeartbeatEvery overrides the in-run heartbeat period in cycles
	// (0 selects DefaultHeartbeatEvery).
	HeartbeatEvery int64
}

// Enabled reports whether any telemetry output is requested.
func (o TelemetryOptions) Enabled() bool {
	return o.StatusAddr != "" || o.EventsPath != ""
}

// Telemetry is a live telemetry session: the event bus the runner and
// run loops feed, the aggregator behind it, and (optionally) the HTTP
// server and JSONL log. Built by TelemetryOptions.Start.
type Telemetry struct {
	Bus *telemetry.Bus
	Agg *telemetry.Aggregator

	srv            *telemetry.Server
	heartbeatEvery int64
	runSeq         atomic.Int32
}

// Start opens the requested sinks and returns the live session, or nil
// if o is disabled (callers nil-check; every method on a nil *Telemetry
// is a safe no-op where it matters: Hook and RunnerOptions return
// nothing to install).
func (o TelemetryOptions) Start() (*Telemetry, error) {
	if !o.Enabled() {
		return nil, nil
	}
	t := &Telemetry{Agg: telemetry.NewAggregator(), heartbeatEvery: o.HeartbeatEvery}
	t.Bus = telemetry.NewBus(t.Agg)
	if o.EventsPath != "" {
		f, err := os.OpenFile(o.EventsPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		t.Bus.Attach(telemetry.NewJSONL(f))
	}
	if o.StatusAddr != "" {
		srv, err := telemetry.NewServer(o.StatusAddr, t.Agg)
		if err != nil {
			t.Bus.Close()
			return nil, err
		}
		t.srv = srv
	}
	return t, nil
}

// Addr returns the bound HTTP address ("" when no server is running).
func (t *Telemetry) Addr() string {
	if t == nil || t.srv == nil {
		return ""
	}
	return t.srv.Addr()
}

// Attach wires this session into cfg: the run loop will emit
// heartbeats and lifecycle events onto the bus. Nil-receiver safe.
func (t *Telemetry) Attach(cfg *Config) {
	if t == nil {
		return
	}
	cfg.Telemetry = t.Hook()
	cfg.HeartbeatEvery = t.heartbeatEvery
}

// Hook returns the Config.Telemetry factory: each simulation it is
// invoked on gets a fresh run id, so concurrent runs (saturation-search
// probes, forked measurement runs) produce distinguishable heartbeat
// streams. Returns nil on a nil receiver, which disables run events.
func (t *Telemetry) Hook() func(*Sim) func(RunEvent) {
	if t == nil {
		return nil
	}
	return func(_ *Sim) func(RunEvent) {
		id := t.runSeq.Add(1) - 1
		return func(e RunEvent) {
			t.Bus.Emit(runToEvent(id, e))
		}
	}
}

// runToEvent maps a run-loop RunEvent onto the wire Event taxonomy,
// stamping the run id into the Job field.
func runToEvent(id int32, e RunEvent) telemetry.Event {
	out := telemetry.Event{Job: id, Cycle: e.Cycle, Total: e.Total, InFlight: e.InFlight}
	switch e.Kind {
	case RunHeartbeat:
		out.Kind = telemetry.EvHeartbeat
	case RunDone:
		out.Kind = telemetry.EvRunDone
	case RunCheckpointSave:
		out.Kind = telemetry.EvCheckpointSave
	case RunCheckpointRestore:
		out.Kind = telemetry.EvCheckpointRestore
	case RunCIStop:
		out.Kind = telemetry.EvCIStop
		out.Attempt = int32(e.Arg)
	case RunWatchdogStall:
		out.Kind = telemetry.EvWatchdogStall
		out.Err = fmt.Sprintf("no ejection for %d cycles", e.Arg)
	}
	return out
}

// ProgressLine returns a one-line human progress summary with ETA ("" on
// a nil receiver).
func (t *Telemetry) ProgressLine() string {
	if t == nil {
		return ""
	}
	return t.Agg.ProgressLine()
}

// Close stops the HTTP server and flushes/closes every sink.
// Nil-receiver safe.
func (t *Telemetry) Close() error {
	if t == nil {
		return nil
	}
	var first error
	if t.srv != nil {
		first = t.srv.Close()
	}
	if err := t.Bus.Close(); err != nil && first == nil {
		first = err
	}
	return first
}
