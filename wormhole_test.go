package seec_test

import (
	"testing"

	"seec"
)

// wormholeConfig: 2-flit VCs holding 5-flit packets (§3.11: wormhole
// with VC depth below the largest packet, single packet per VC).
func wormholeConfig(scheme seec.Scheme) seec.Config {
	cfg := seec.DefaultConfig()
	cfg.Rows, cfg.Cols = 4, 4
	cfg.Scheme = scheme
	cfg.Wormhole = true
	cfg.VCDepth = 2
	cfg.VCsPerVNet = 2
	return cfg
}

// TestWormholeBasicFlow: plain XY wormhole must deliver minimally.
func TestWormholeBasicFlow(t *testing.T) {
	cfg := wormholeConfig(seec.SchemeXY)
	cfg.InjectionRate = 0.05
	cfg.SimCycles = 8000
	res, err := seec.RunSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalled || res.ReceivedPackets < 500 {
		t.Fatalf("wormhole XY broken: stalled=%v recv=%d", res.Stalled, res.ReceivedPackets)
	}
	if res.MisrouteHops != 0 {
		t.Fatalf("wormhole misrouted %d hops", res.MisrouteHops)
	}
}

// TestWormholeSEECBreaksDeadlock: SEEC's §3.11 claim — wormhole plus
// adaptive routing, deadlocks resolved by upgrading head flits whose
// trailing flits then follow in FF mode, with no packet truncation.
func TestWormholeSEECBreaksDeadlock(t *testing.T) {
	for _, scheme := range []seec.Scheme{seec.SchemeSEEC, seec.SchemeMSEEC} {
		cfg := wormholeConfig(scheme)
		cfg.VCsPerVNet = 1
		cfg.Routing = seec.RoutingAdaptive
		cfg.InjectionRate = 0.40
		sim, err := seec.NewSim(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 15000; i++ {
			sim.Step()
			if sim.Stalled(4000) {
				t.Fatalf("%s: wormhole network wedged at cycle %d", scheme, sim.Cycle())
			}
		}
		if sim.FFUpgrades() == 0 {
			t.Fatalf("%s: no FF upgrades under saturating wormhole load", scheme)
		}
		res := sim.Snapshot()
		if res.MisrouteHops != 0 {
			t.Fatalf("%s: FF misrouted in wormhole mode", scheme)
		}
		// Invariants must hold with shallow VCs too.
		if err := sim.Net.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
	}
}

// TestWormholeBaselineDeadlocks: the §3.11 configuration without SEEC
// genuinely wedges, proving the previous test exercises resolution.
func TestWormholeBaselineDeadlocks(t *testing.T) {
	cfg := wormholeConfig(seec.SchemeNone)
	cfg.VCsPerVNet = 1
	cfg.Routing = seec.RoutingAdaptive
	cfg.InjectionRate = 0.40
	sim, err := seec.NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 15000; i++ {
		sim.Step()
		if sim.Stalled(4000) {
			return // wedged as expected
		}
	}
	t.Fatal("unprotected wormhole adaptive routing survived; deadlock test is vacuous")
}

// TestWormholeRejectsMoveBasedSchemes: SPIN/SWAP/DRAIN require whole
// buffered packets and must refuse wormhole mode.
func TestWormholeRejectsMoveBasedSchemes(t *testing.T) {
	for _, scheme := range []seec.Scheme{seec.SchemeSPIN, seec.SchemeSWAP, seec.SchemeDRAIN} {
		cfg := wormholeConfig(scheme)
		if _, err := seec.NewSim(cfg); err == nil {
			t.Errorf("%s accepted wormhole mode", scheme)
		}
	}
}

// TestWormholeDrainsCompletely: after stopping injection, a wormhole
// SEEC network must drain every packet (tails stall across routers and
// must still unwind).
func TestWormholeDrainsCompletely(t *testing.T) {
	cfg := wormholeConfig(seec.SchemeSEEC)
	cfg.Routing = seec.RoutingAdaptive
	cfg.InjectionRate = 0.25
	sim, err := seec.NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(5000)
	sim.Synthetic.Pause()
	for i := 0; i < 2_000_000 && !sim.Drained(); i++ {
		sim.Step()
	}
	if !sim.Drained() {
		t.Fatalf("%d packets stranded in wormhole drain", sim.Net.InFlight)
	}
}
